package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// stubJournal is a scriptable Journal: every hook can be told to fail,
// and appended outcomes are recorded for inspection.
type stubJournal struct {
	mu       sync.Mutex
	appends  []string
	barriers int

	failAppend  bool
	failBarrier bool
}

var errStubJournal = errors.New("stub journal: disk on fire")

func (j *stubJournal) note(line string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failAppend {
		return errStubJournal
	}
	j.appends = append(j.appends, line)
	return nil
}

func (j *stubJournal) Admitted(req *multicast.Request, sol *core.Solution) error {
	return j.note(fmt.Sprintf("admitted %d", req.ID))
}
func (j *stubJournal) Departed(reqID int) error {
	return j.note(fmt.Sprintf("departed %d", reqID))
}
func (j *stubJournal) Repaired(reqID int, sol *core.Solution) error {
	return j.note(fmt.Sprintf("repaired %d", reqID))
}
func (j *stubJournal) Shed(reqID int) error {
	return j.note(fmt.Sprintf("shed %d", reqID))
}
func (j *stubJournal) MutationsApplied(muts []Mutation) error {
	return j.note(fmt.Sprintf("mutations %d", len(muts)))
}
func (j *stubJournal) Barrier() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failBarrier {
		return errStubJournal
	}
	j.barriers++
	return nil
}

func (j *stubJournal) setFail(append, barrier bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.failAppend, j.failBarrier = append, barrier
}

func (j *stubJournal) lines() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.appends...)
}

// residualSig renders every residual with exact float formatting — a
// cheap state signature for unwind assertions.
func residualSig(eng *Engine) string {
	var sb strings.Builder
	nw := eng.adm.Network()
	for e := 0; e < nw.NumEdges(); e++ {
		fmt.Fprintf(&sb, "%s,", strconv.FormatFloat(nw.ResidualBandwidth(e), 'g', -1, 64))
	}
	for _, v := range nw.Servers() {
		fmt.Fprintf(&sb, "%s,", strconv.FormatFloat(nw.ResidualCompute(v), 'g', -1, 64))
	}
	return sb.String()
}

func journaledEngine(t *testing.T, workers int, j Journal) *Engine {
	t.Helper()
	nw := testNetwork(t, "geant", 11)
	return NewWith(nw, core.NewSPPlanner(), WithWorkers(workers), WithJournal(j))
}

func admitOne(t *testing.T, eng *Engine, gen *multicast.Generator) *multicast.Request {
	t.Helper()
	for {
		req, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		_, aerr := eng.Admit(req)
		if aerr == nil {
			return req
		}
		if !core.IsRejection(aerr) {
			t.Fatalf("admit: %v", aerr)
		}
	}
}

// TestJournalFailureUnwindsAdmission: "acked implies logged" — when the
// journal cannot take the admission, the admission must not stand. The
// request's resources are released, the error is ErrDurability, and the
// failure is not miscounted as a policy rejection.
func TestJournalFailureUnwindsAdmission(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, mode := range []string{"append", "barrier"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				j := &stubJournal{}
				eng := journaledEngine(t, workers, j)
				defer eng.Close()
				gen, err := multicast.NewGenerator(eng.adm.Network().NumNodes(), multicast.OnlineGeneratorConfig(), 1)
				if err != nil {
					t.Fatal(err)
				}
				admitOne(t, eng, gen) // a healthy admission first
				liveBefore := eng.LiveCount()
				rejBefore := eng.RejectedCount()
				fpBefore := residualSig(eng)

				j.setFail(mode == "append", mode == "barrier")
				req, gerr := gen.Next()
				if gerr != nil {
					t.Fatal(gerr)
				}
				sol, aerr := eng.Admit(req)
				if sol != nil {
					t.Fatal("journal failure returned a solution — an unlogged ack")
				}
				if !errors.Is(aerr, ErrDurability) {
					t.Fatalf("error = %v, want ErrDurability", aerr)
				}
				if got := eng.LiveCount(); got != liveBefore {
					t.Fatalf("live count %d after unwind, want %d", got, liveBefore)
				}
				if got := eng.RejectedCount(); got != rejBefore {
					t.Fatalf("durability failure was counted as a rejection (%d -> %d)", rejBefore, got)
				}
				if got := residualSig(eng); got != fpBefore {
					t.Fatal("unwind left resources allocated")
				}

				// The failure is sticky at the engine surface: the journal
				// stays broken, so later admissions must also fail durable.
				req2, _ := gen.Next()
				if _, aerr2 := eng.Admit(req2); !errors.Is(aerr2, ErrDurability) {
					t.Fatalf("second admit after journal failure = %v, want ErrDurability", aerr2)
				}

				// And recovery of the journal restores service.
				j.setFail(false, false)
				admitOne(t, eng, gen)
				if got := eng.LiveCount(); got != liveBefore+1 {
					t.Fatalf("post-recovery live count %d, want %d", got, liveBefore+1)
				}
			})
		}
	}
}

// TestJournalFailureOnDepart: a departure that cannot be journaled
// still departed (the release is not unwindable), and the caller learns
// via ErrDurability that the log is behind the state.
func TestJournalFailureOnDepart(t *testing.T) {
	j := &stubJournal{}
	eng := journaledEngine(t, 1, j)
	defer eng.Close()
	gen, err := multicast.NewGenerator(eng.adm.Network().NumNodes(), multicast.OnlineGeneratorConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	req := admitOne(t, eng, gen)

	j.setFail(true, false)
	if _, derr := eng.Depart(req.ID); !errors.Is(derr, ErrDurability) {
		t.Fatalf("depart with broken journal = %v, want ErrDurability", derr)
	}
	if got := eng.LiveCount(); got != 0 {
		t.Fatalf("session still live after depart: %d", got)
	}
}

// TestJournalRecordsOutcomes pins the append vocabulary: admissions,
// departures and maintenance batches land in the journal in operation
// order, each ack preceded by a barrier.
func TestJournalRecordsOutcomes(t *testing.T) {
	j := &stubJournal{}
	eng := journaledEngine(t, 1, j)
	defer eng.Close()
	gen, err := multicast.NewGenerator(eng.adm.Network().NumNodes(), multicast.OnlineGeneratorConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	req := admitOne(t, eng, gen)
	if err := eng.Apply(Mutation{Kind: LinkState, ID: 0, Up: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Depart(req.ID); err != nil {
		t.Fatal(err)
	}

	lines := j.lines()
	want := []string{fmt.Sprintf("admitted %d", req.ID), "mutations 1"}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("journal line %d = %q, want %q (all: %q)", i, lines[i], w, lines)
		}
	}
	last := lines[len(lines)-1]
	if last != fmt.Sprintf("departed %d", req.ID) {
		t.Fatalf("last journal line = %q, want the departure (all: %q)", last, lines)
	}
	j.mu.Lock()
	barriers := j.barriers
	j.mu.Unlock()
	if barriers < len(lines) {
		t.Fatalf("%d barriers for %d appends — some ack was not fsync-covered", barriers, len(lines))
	}
}
