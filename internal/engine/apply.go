package engine

import (
	"context"
	"fmt"
	"math"

	"nfvmcast/internal/core"
	"nfvmcast/internal/sdn"
)

// Typed maintenance mutations. Update hands callers raw mutable access
// to the network, which is the right hatch for trusted maintenance
// code but the wrong one for declarative failure scripts and fuzzed
// input: a closure that fails halfway leaves its earlier mutations in
// place. Apply is the hardened surface — a batch of typed mutations is
// validated in full on the writer goroutine before the first one is
// applied, so a malformed event (unknown link or server ID, negative
// or non-finite capacity, resize below the allocated share) rejects
// the whole batch with *MalformedMutationError and the network
// provably untouched. A batch that validates is applied atomically
// with respect to concurrent Admits, and any structural change then
// runs the usual failure-injection path (FailureInjected event,
// automatic recovery pass) before Apply returns.

// MutationKind names the typed maintenance operations Apply accepts.
type MutationKind uint8

// The mutation vocabulary: link/server failure-state transitions and
// capacity right-sizing.
const (
	// LinkState sets link ID up (Up=true) or failed (Up=false).
	LinkState MutationKind = iota
	// ServerState sets the server at node ID up or failed.
	ServerState
	// LinkCapacity resizes link ID's bandwidth capacity to Capacity
	// Mbps (must cover the currently allocated share).
	LinkCapacity
	// ServerCapacity resizes the server at node ID to Capacity MHz
	// (must cover the currently allocated share).
	ServerCapacity
)

// String names the kind for diagnostics.
func (k MutationKind) String() string {
	switch k {
	case LinkState:
		return "link-state"
	case ServerState:
		return "server-state"
	case LinkCapacity:
		return "link-capacity"
	case ServerCapacity:
		return "server-capacity"
	default:
		return fmt.Sprintf("mutation-kind-%d", uint8(k))
	}
}

// Mutation is one typed maintenance event.
type Mutation struct {
	// Kind selects the operation.
	Kind MutationKind
	// ID is the link (edge ID) or server (node ID) the mutation
	// concerns.
	ID int
	// Up is the new failure state for LinkState/ServerState.
	Up bool
	// Capacity is the new capacity for LinkCapacity/ServerCapacity.
	Capacity float64
}

// String renders the mutation for error messages and event details.
func (m Mutation) String() string {
	switch m.Kind {
	case LinkState, ServerState:
		state := "down"
		if m.Up {
			state = "up"
		}
		return fmt.Sprintf("%s %d %s", m.Kind, m.ID, state)
	default:
		return fmt.Sprintf("%s %d -> %g", m.Kind, m.ID, m.Capacity)
	}
}

// MalformedMutationError rejects an Apply batch: the mutation at Index
// failed validation for Reason, and no mutation of the batch was
// applied.
type MalformedMutationError struct {
	// Index is the offending mutation's position in the batch.
	Index int
	// Mutation is the offending event.
	Mutation Mutation
	// Reason says what is malformed about it.
	Reason string
}

func (e *MalformedMutationError) Error() string {
	return fmt.Sprintf("engine: malformed mutation %d (%s): %s",
		e.Index, e.Mutation, e.Reason)
}

// validateMutation checks m against the network's current state
// without mutating it. It must be called on the writer goroutine.
func validateMutation(nw *sdn.Network, m Mutation) string {
	switch m.Kind {
	case LinkState:
		if m.ID < 0 || m.ID >= nw.NumEdges() {
			return fmt.Sprintf("link %d out of range (m=%d)", m.ID, nw.NumEdges())
		}
	case ServerState:
		if !nw.IsServer(m.ID) {
			return fmt.Sprintf("node %d has no attached server", m.ID)
		}
	case LinkCapacity:
		if m.ID < 0 || m.ID >= nw.NumEdges() {
			return fmt.Sprintf("link %d out of range (m=%d)", m.ID, nw.NumEdges())
		}
		if math.IsNaN(m.Capacity) || math.IsInf(m.Capacity, 0) || m.Capacity <= 0 {
			return fmt.Sprintf("invalid capacity %v", m.Capacity)
		}
		if alloc := nw.BandwidthCap(m.ID) - nw.ResidualBandwidth(m.ID); m.Capacity < alloc-1e-6 {
			return fmt.Sprintf("capacity %.1f Mbps below the %.1f Mbps live sessions hold", m.Capacity, alloc)
		}
	case ServerCapacity:
		if !nw.IsServer(m.ID) {
			return fmt.Sprintf("node %d has no attached server", m.ID)
		}
		if math.IsNaN(m.Capacity) || math.IsInf(m.Capacity, 0) || m.Capacity <= 0 {
			return fmt.Sprintf("invalid capacity %v", m.Capacity)
		}
		if alloc := nw.ComputeCap(m.ID) - nw.ResidualCompute(m.ID); m.Capacity < alloc-1e-6 {
			return fmt.Sprintf("capacity %.1f MHz below the %.1f MHz live sessions hold", m.Capacity, alloc)
		}
	default:
		return "unknown mutation kind"
	}
	return ""
}

// applyMutation applies an already-validated mutation. The setters
// re-validate internally; a failure here would mean the validation
// above drifted from the sdn layer's, which the unit tests pin.
func applyMutation(nw *sdn.Network, m Mutation) error {
	switch m.Kind {
	case LinkState:
		return nw.SetLinkUp(m.ID, m.Up)
	case ServerState:
		return nw.SetServerUp(m.ID, m.Up)
	case LinkCapacity:
		return nw.SetBandwidthCap(m.ID, m.Capacity)
	default:
		return nw.SetComputeCap(m.ID, m.Capacity)
	}
}

// Apply validates and applies a batch of typed maintenance mutations
// on the writer goroutine. Validation of the whole batch precedes the
// first application: on a malformed event Apply returns a
// *MalformedMutationError and the network is untouched — no partial
// failure script is ever left behind, which is what makes Apply safe
// to drive from declarative scenario configs and fuzzers. A batch that
// validates is applied in order as one atomic update; failure-state
// changes then trigger the same FailureInjected accounting and
// automatic recovery pass as a manual Update would.
func (e *Engine) Apply(muts ...Mutation) error {
	return e.ApplyContext(context.Background(), muts...)
}

// ApplyContext is Apply with cancellation (the same contract as
// UpdateContext: ctx bounds the automatic recovery pass once the batch
// has applied). With a journal attached, Apply is the only maintenance
// surface whose effects replay exactly — the validated batch is logged
// as a typed mutation_applied record, where a raw Update closure is
// opaque to the log. Durable deployments must therefore mutate through
// Apply.
func (e *Engine) ApplyContext(ctx context.Context, muts ...Mutation) error {
	return e.updateContext(ctx, func(nw *sdn.Network) error {
		for i, m := range muts {
			if reason := validateMutation(nw, m); reason != "" {
				return &MalformedMutationError{Index: i, Mutation: m, Reason: reason}
			}
		}
		for _, m := range muts {
			if err := applyMutation(nw, m); err != nil {
				return fmt.Errorf("engine: apply %s: %w", m, err)
			}
		}
		return nil
	}, muts)
}

// Lives returns the solutions currently holding resources, in
// ascending request-ID order — the live table the consistency oracles
// (scenario invariants, fuzz targets) reconcile against residual
// capacities. The returned solutions are shared, not copies; treat
// them as read-only.
func (e *Engine) Lives() []*core.Solution {
	var out []*core.Solution
	_ = e.exec(func() { out = e.adm.Lives() })
	return out
}
