package engine

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// Public-surface fuzzing: arbitrary bytes are decoded into sequences
// of Admit/Depart calls (FuzzEngineAdmit) and typed mutation batches
// (FuzzEngineUpdate), and the harness asserts the properties a caller
// is entitled to regardless of input garbage:
//
//   - the writer never panics and never wedges (every call returns
//     within a watchdog budget, including Close);
//   - malformed input is rejected with the typed error and provably
//     zero state change;
//   - whatever the interleaving, the live table stays consistent with
//     the network's residual capacities.
//
// Request IDs are harness-assigned (monotonic), matching the
// documented caller contract — IDs come from a workload generator, and
// reusing a live ID is a caller bug, not an input the engine defends.

// fuzzReader drains the fuzz input; exhausted reads return zero so any
// prefix decodes.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) done() bool { return r.pos >= len(r.data) }

func (r *fuzzReader) byte() byte {
	if r.done() {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) u16() uint16 {
	return uint16(r.byte()) | uint16(r.byte())<<8
}

func (r *fuzzReader) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(r.byte()) << (8 * i)
	}
	return v
}

// engineCall runs one engine call under a liveness watchdog: a
// single-writer engine that fails to answer is deadlocked, which a
// fuzzer would otherwise report as a timeout with no locus.
func engineCall(t *testing.T, op string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatalf("engine %s wedged: no response within 1m", op)
	}
}

// decodeFuzzRequest builds a request from fuzz bytes. The selector
// decides which fields are kept in-range and which are raw, so the
// corpus explores both the happy path and every validation error
// (out-of-range nodes, empty destination sets, duplicate
// destinations, non-finite bandwidth, empty chains).
func decodeFuzzRequest(r *fuzzReader, n, id int) *multicast.Request {
	sel := r.byte()
	src := int(r.byte())
	if sel&1 == 0 {
		src %= n
	}
	nd := int(r.byte() % 6)
	dests := make([]int, 0, nd)
	for i := 0; i < nd; i++ {
		d := int(r.byte())
		if sel&2 == 0 {
			d %= n
		}
		dests = append(dests, d)
	}
	var bw float64
	if sel&4 == 0 {
		bw = 1 + float64(r.u16()%2000)
	} else {
		bw = math.Float64frombits(r.u64()) // NaN, Inf, negatives, denormals
	}
	var chain nfv.Chain
	if sel&8 == 0 {
		chain, _ = nfv.RandomChain(rand.New(rand.NewSource(int64(r.byte()))), 1, 3)
	}
	return &multicast.Request{
		ID:            id,
		Source:        src,
		Destinations:  dests,
		BandwidthMbps: bw,
		Chain:         chain,
	}
}

// checkEngineConsistency reconciles the live table against the
// residual network: cap − free on every link and server must equal the
// sum of live allocations, residuals must sit inside [0, cap], and the
// engine's count views must agree. Safe to call with no in-flight
// operations.
func checkEngineConsistency(t *testing.T, eng *Engine, nw *sdn.Network) {
	t.Helper()
	var lives []*core.Solution
	engineCall(t, "Lives", func() { lives = eng.Lives() })
	wantLink := make([]float64, nw.NumEdges())
	wantSrv := make(map[int]float64)
	for _, sol := range lives {
		alloc := core.AllocationFor(sol.Request, sol.Tree)
		for e, bw := range alloc.Links {
			wantLink[e] += bw
		}
		for v, mhz := range alloc.Servers {
			wantSrv[v] += mhz
		}
	}
	// Tolerance scales with the capacity's own representable precision:
	// fuzzed resizes push caps to ~1e15, where cap − free has an ulp far
	// above the allocated share (the fuzzer found exactly this).
	const eps = 1e-6
	tol := func(want, cap float64) float64 {
		return eps*math.Max(1, math.Abs(want)) + 1e-9*math.Abs(cap)
	}
	for e := 0; e < nw.NumEdges(); e++ {
		free, cap := nw.ResidualBandwidth(e), nw.BandwidthCap(e)
		if free < -eps || free > cap+eps || math.IsNaN(free) {
			t.Fatalf("link %d residual %g outside [0, %g]", e, free, cap)
		}
		if got := cap - free; math.Abs(got-wantLink[e]) > tol(wantLink[e], cap) {
			t.Fatalf("link %d allocated %g but live table sums to %g", e, got, wantLink[e])
		}
	}
	for _, v := range nw.Servers() {
		free, cap := nw.ResidualCompute(v), nw.ComputeCap(v)
		if free < -eps || free > cap+eps || math.IsNaN(free) {
			t.Fatalf("server %d residual %g outside [0, %g]", v, free, cap)
		}
		if got := cap - free; math.Abs(got-wantSrv[v]) > tol(wantSrv[v], cap) {
			t.Fatalf("server %d allocated %g but live table sums to %g", v, got, wantSrv[v])
		}
	}
	var count int
	engineCall(t, "LiveCount", func() { count = eng.LiveCount() })
	if count != len(lives) {
		t.Fatalf("LiveCount %d disagrees with live table %d", count, len(lives))
	}
}

// FuzzEngineAdmit decodes arbitrary bytes into an Admit/Depart/read
// interleaving against a fresh engine and asserts no panic, no wedge,
// and a live table consistent with the residual network at the end.
func FuzzEngineAdmit(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00, 0x08, 0x02, 0x02, 0x05, 0x07, 0x64, 0x00, 0x03})
	f.Add([]byte("\x01\x00\x04\x03\x01\x09\xff\xff\xff\xff\xff\xff\xff\x7f\x01\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		r := &fuzzReader{data: data}
		nw := testNetwork(t, "geant", 7)
		eng := New(nw, plannerFor(t, "Online_CP", nw), Options{Workers: int(r.byte() % 5)})
		defer engineCall(t, "Close", eng.Close)
		var live []int
		nextID := 1
		for ops := 0; ops < 64 && !r.done(); ops++ {
			switch r.byte() % 3 {
			case 0:
				req := decodeFuzzRequest(r, nw.NumNodes(), nextID)
				nextID++
				var err error
				engineCall(t, "Admit", func() { _, err = eng.Admit(req) })
				if err == nil {
					live = append(live, req.ID)
				}
			case 1:
				// Depart either a genuinely live session or a raw byte ID
				// (unknown, already departed, negative via wraparound).
				id := int(r.byte())
				if r.byte()%2 == 0 && len(live) > 0 {
					idx := id % len(live)
					id = live[idx]
					live = append(live[:idx], live[idx+1:]...)
				}
				engineCall(t, "Depart", func() { _, _ = eng.Depart(id) })
			default:
				engineCall(t, "reads", func() {
					_ = eng.LiveCount()
					_ = eng.AdmittedCount()
					_ = eng.RejectedCount()
				})
			}
		}
		checkEngineConsistency(t, eng, nw)
	})
}

// decodeFuzzMutation builds one typed mutation from fuzz bytes,
// spanning valid operations, unknown kinds, out-of-range IDs and
// non-finite capacities.
func decodeFuzzMutation(r *fuzzReader, nw *sdn.Network) Mutation {
	sel := r.byte()
	m := Mutation{Kind: MutationKind(r.byte() % 5), Up: r.byte()%2 == 0}
	id := int(r.byte())
	if sel&1 == 0 {
		switch m.Kind {
		case ServerState, ServerCapacity:
			servers := nw.Servers()
			id = servers[id%len(servers)]
		default:
			id %= nw.NumEdges()
		}
	} else if sel&2 == 0 {
		id = -1 - id%4
	}
	m.ID = id
	if sel&4 == 0 {
		m.Capacity = float64(1 + r.u16())
	} else {
		m.Capacity = math.Float64frombits(r.u64())
	}
	return m
}

// FuzzEngineUpdate decodes arbitrary bytes into typed mutation batches
// (failure injection, restores, capacity resizes — valid and malformed
// alike) applied to an engine with live sessions and self-healing
// enabled. It asserts Apply's contract: malformed batches are rejected
// with *MalformedMutationError and zero state change; valid batches
// (and their automatic recovery passes) never panic, never wedge, and
// leave the live table consistent with residual capacities.
func FuzzEngineUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00, 0x00, 0x01, 0x05, 0x10, 0x00, 0x00, 0x02, 0x00, 0x07})
	f.Add([]byte("\x01\x02\x03\x02\x09\x7f\xff\xff\xff\xff\xff\xff\xff\xff\x00\x01\x02"))
	// Cross-shard seed: the batch shape the shard router's ApplyAll
	// fans out during fleet maintenance — a link resize, a server
	// failure and a link restore, then a malformed tail (negative
	// server ID). The whole batch must reject with zero state change;
	// internal/shard's TestMalformedBatchShardIsolation asserts the
	// sibling-shard side of the same contract.
	f.Add([]byte{
		0x02, 0x03, // workers, then a 4-mutation batch
		0x00, 0x02, 0x00, 0x05, 0x10, 0x27, // valid: resize link 5
		0x00, 0x01, 0x01, 0x03, 0x00, 0x00, // valid: fail server (3rd)
		0x00, 0x00, 0x00, 0x07, 0x01, 0x00, // valid: restore link 7
		0x01, 0x03, 0x00, 0x02, 0xE8, 0x03, // malformed: server ID -3
	})
	// Threshold-crossing seed: capacity resizes that walk residual
	// classes across work-graph membership boundaries — a link squeezed
	// to 2 Mbps (below any request's bandwidth demand, so the cached
	// capacitated graph drops it) then regrown to 10001, and a server
	// shrunk to 3 MHz (below any chain's compute demand) then regrown —
	// driving the incremental cache through flip-triggered rebuilds in
	// both directions with live sessions and recovery enabled.
	f.Add([]byte{
		0x01, 0x03, // workers, then a 4-mutation batch
		0x00, 0x02, 0x00, 0x04, 0x01, 0x00, // link 4 capacity -> 2 Mbps
		0x00, 0x02, 0x00, 0x04, 0x10, 0x27, // link 4 capacity -> 10001 Mbps
		0x00, 0x03, 0x00, 0x01, 0x02, 0x00, // 2nd server -> 3 MHz
		0x00, 0x03, 0x00, 0x01, 0xA0, 0x0F, // 2nd server -> 4001 MHz
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		r := &fuzzReader{data: data}
		nw := testNetwork(t, "geant", 7)
		pol := recov.DefaultPolicy()
		eng := New(nw, plannerFor(t, "Online_CP", nw), Options{
			Workers:  1 + int(r.byte()%4),
			Recovery: &pol,
		})
		defer engineCall(t, "Close", eng.Close)
		// Seed live sessions so failures have trees to damage.
		gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			req, gerr := gen.Next()
			if gerr != nil {
				t.Fatal(gerr)
			}
			engineCall(t, "Admit", func() { _, _ = eng.Admit(req) })
		}
		for ops := 0; ops < 32 && !r.done(); ops++ {
			muts := make([]Mutation, 1+int(r.byte()%4))
			for i := range muts {
				muts[i] = decodeFuzzMutation(r, nw)
			}
			beforeMut, beforeStruct, beforeFree := networkState(eng)
			var aerr error
			engineCall(t, "Apply", func() { aerr = eng.Apply(muts...) })
			if aerr != nil {
				var merr *MalformedMutationError
				if !errors.As(aerr, &merr) {
					t.Fatalf("Apply error is not *MalformedMutationError: %v", aerr)
				}
				afterMut, afterStruct, afterFree := networkState(eng)
				if afterMut != beforeMut || afterStruct != beforeStruct || afterFree != beforeFree {
					t.Fatalf("rejected batch %v moved network state: mutVer %d->%d structVer %d->%d free %g->%g",
						muts, beforeMut, afterMut, beforeStruct, afterStruct, beforeFree, afterFree)
				}
			}
		}
		checkEngineConsistency(t, eng, nw)
	})
}
