package scenario

import (
	"strconv"
	"strings"
	"testing"
)

// TestLibraryScenarios runs every shipped scenario and asserts, per
// scenario, at least one engine-behaviour invariant beyond "no error"
// — on top of the harness's own continuous invariants (residual
// bounds, live-table/residual conservation, session accounting), which
// must all hold: Violations empty.
func TestLibraryScenarios(t *testing.T) {
	checks := map[string]func(*testing.T, *Result){
		"flash-crowd": func(t *testing.T, res *Result) {
			ev := res.PerTenant["event"]
			if ev.Admitted == 0 {
				t.Error("flash crowd admitted nothing")
			}
			if ev.Rejected == 0 {
				t.Error("flash-crowd peak never saturated: no event-tenant rejections")
			}
			if bg := res.PerTenant["background"]; bg.Admitted == 0 {
				t.Error("background tenant starved entirely")
			}
		},
		"diurnal-rightsize": func(t *testing.T, res *Result) {
			if res.FailureBatches < 1 {
				t.Error("right-sizing steps never applied")
			}
			if res.RecoveryPasses != 0 {
				t.Errorf("capacity resize triggered %d recovery passes; resizes are residual-only",
					res.RecoveryPasses)
			}
			if res.Admitted == 0 || res.Rejected == 0 {
				t.Errorf("diurnal peak should both admit and reject: admitted=%d rejected=%d",
					res.Admitted, res.Rejected)
			}
		},
		"regional-failure": func(t *testing.T, res *Result) {
			if res.RecoveryPasses == 0 {
				t.Fatal("regional outage triggered no recovery pass")
			}
			if affected := res.RepairedLocal + res.RepairedReplan + res.Shed; affected == 0 {
				t.Error("recovery pass resolved no sessions; outage should hit live trees")
			}
		},
		"rolling-drain": func(t *testing.T, res *Result) {
			if res.FailureBatches != 6 {
				t.Errorf("drain of 3 servers should apply 6 batches (down+up each), got %d",
					res.FailureBatches)
			}
			if res.RecoveryPasses < 3 {
				t.Errorf("each drain step must trigger its own recovery pass, got %d", res.RecoveryPasses)
			}
		},
		"multi-tenant": func(t *testing.T, res *Result) {
			for _, tenant := range []string{"gold", "bronze"} {
				if res.PerTenant[tenant].Admitted == 0 {
					t.Errorf("tenant %s admitted nothing", tenant)
				}
			}
		},
		"rule-limited": func(t *testing.T, res *Result) {
			if res.RuleRejected == 0 {
				t.Error("rule budget never bounced an admission; limit is not binding")
			}
			if res.Admitted == 0 {
				t.Error("nothing admitted under the rule budget")
			}
		},
		"sharded-tenants": func(t *testing.T, res *Result) {
			if res.Shards != 4 || len(res.ShardReports) != 4 {
				t.Fatalf("want 4 shard reports, got shards=%d reports=%d", res.Shards, len(res.ShardReports))
			}
			busy := 0
			for _, sr := range res.ShardReports {
				if sr.Admitted > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Errorf("tenants spread over only %d of 4 shards", busy)
			}
			if res.FailureBatches == 0 {
				t.Error("fleet-wide outage never applied")
			}
			if res.RecoveryPasses == 0 {
				t.Error("fleet-wide outage triggered no recovery pass on any shard")
			}
		},
	}
	for _, cfg := range Library() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			if res.FinalLive != 0 {
				t.Errorf("final live = %d, want 0 after horizon drain", res.FinalLive)
			}
			if res.Admitted != res.Departed+res.Shed {
				t.Errorf("session conservation: admitted %d != departed %d + shed %d",
					res.Admitted, res.Departed, res.Shed)
			}
			check, ok := checks[cfg.Name]
			if !ok {
				t.Fatalf("library scenario %q has no behaviour check", cfg.Name)
			}
			check(t, res)
		})
	}
}

// TestFingerprintDeterminismAcrossWorkers pins the harness's headline
// property: because the runner drives arrivals sequentially and all
// decision state lives behind the single writer, the full decision
// transcript is byte-identical at any engine worker count.
func TestFingerprintDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs per scenario")
	}
	for _, name := range []string{"flash-crowd", "regional-failure"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var base *Result
			for _, workers := range []int{1, 4, 8} {
				cfg, ok := LibraryConfig(name)
				if !ok {
					t.Fatalf("library scenario %q missing", name)
				}
				cfg.Workers = workers
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Fingerprint != base.Fingerprint {
					t.Errorf("workers=%d fingerprint %s != workers=1 %s\ntranscript diff hint:\n%s",
						workers, res.Fingerprint, base.Fingerprint,
						firstTranscriptDiff(base.Transcript(), res.Transcript()))
				}
			}
		})
	}
}

// firstTranscriptDiff locates the first line two transcripts disagree
// on, for actionable failure output.
func firstTranscriptDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return "line " + strconv.Itoa(i) + ": " + la[i] + " vs " + lb[i]
		}
	}
	return "transcripts are a prefix of each other"
}

// TestRunIsReproducible: same config, same process, twice — identical
// fingerprints (no hidden global state, clocks or map-order leaks).
func TestRunIsReproducible(t *testing.T) {
	cfg, _ := LibraryConfig("multi-tenant")
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, _ := LibraryConfig("multi-tenant")
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Errorf("same config, different fingerprints: %s vs %s", r1.Fingerprint, r2.Fingerprint)
	}
}
