package scenario

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"nfvmcast/internal/daemon"
)

// startDaemon boots an nfvmcastd server on a random localhost port.
func startDaemon(t *testing.T, dcfg daemon.Config) (*daemon.Server, string) {
	t.Helper()
	srv, err := daemon.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, "http://" + ln.Addr().String()
}

// daemonScenario is a small two-tenant workload with a transient link
// failure, on the same (topology, seed) substrate the daemon builds.
func daemonScenario() *Config {
	return &Config{
		Name:         "daemon-smoke",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "SP",
		Seed:         19,
		HorizonHours: 3,
		Tenants: []Tenant{
			{Name: "gold", Phases: []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 12}}},
			{Name: "bronze", Phases: []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 8}}},
		},
		Failures: []FailureStep{
			{Kind: "link", AtHours: 1, DurationHours: 0.5, ID: 7},
		},
	}
}

// TestRunDaemonScenario: one scenario definition drives a live daemon
// over HTTP; the workload completes, the books balance on both sides
// of the wire, and the daemon's WAL carries the whole run.
func TestRunDaemonScenario(t *testing.T) {
	cfg := daemonScenario()
	walDir := filepath.Join(t.TempDir(), "wal")
	dcfg := daemon.Config{
		Topology: "geant", Seed: cfg.Seed, Policy: cfg.Policy,
		Shards: 2, WALDir: walDir, NoSync: true,
	}
	srv, base := startDaemon(t, dcfg)

	res, err := RunDaemon(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatal("daemon-mode run admitted nothing")
	}
	if res.Admitted+res.Rejected != res.Arrivals {
		t.Fatalf("books don't balance: admitted %d + rejected %d != arrivals %d",
			res.Admitted, res.Rejected, res.Arrivals)
	}
	if res.FinalLive != 0 {
		t.Fatalf("%d sessions live after horizon drain", res.FinalLive)
	}
	if len(res.ShardReports) != 2 {
		t.Fatalf("want 2 shard reports from the daemon, got %d", len(res.ShardReports))
	}
	var daemonAdmitted, daemonLive int
	for _, sr := range res.ShardReports {
		daemonAdmitted += sr.Admitted
		daemonLive += sr.Live
	}
	if daemonAdmitted != res.Admitted {
		t.Fatalf("daemon admitted %d, harness counted %d", daemonAdmitted, res.Admitted)
	}
	if daemonLive != 0 {
		t.Fatalf("daemon still holds %d live sessions after the drain", daemonLive)
	}
	for tenant, ts := range res.PerTenant {
		if ts.Admitted == 0 {
			t.Errorf("tenant %s admitted nothing", tenant)
		}
	}
	_ = srv
}

// TestRunDaemonDeterministic: two fresh daemons fed the same scenario
// agree on the harness transcript fingerprint AND on the daemons' own
// per-shard decision fingerprints.
func TestRunDaemonDeterministic(t *testing.T) {
	cfg := daemonScenario()
	run := func(walDir string) *Result {
		_, base := startDaemon(t, daemon.Config{
			Topology: "geant", Seed: cfg.Seed, Policy: cfg.Policy,
			Shards: 2, WALDir: walDir, NoSync: true,
		})
		res, err := RunDaemon(cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(filepath.Join(t.TempDir(), "wal1"))
	r2 := run(filepath.Join(t.TempDir(), "wal2"))
	if r1.Fingerprint != r2.Fingerprint {
		t.Errorf("harness fingerprints diverge:\n%s\n%s", r1.Fingerprint, r2.Fingerprint)
	}
	if len(r1.ShardReports) != len(r2.ShardReports) {
		t.Fatalf("shard report counts diverge: %d vs %d", len(r1.ShardReports), len(r2.ShardReports))
	}
	for i := range r1.ShardReports {
		a, b := r1.ShardReports[i], r2.ShardReports[i]
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("shard %s decision fingerprints diverge", a.ID)
		}
	}
}

// TestRunDaemonRejectsResize: resize steps need residual visibility
// the wire API does not expose; daemon mode must refuse them up front
// rather than half-apply.
func TestRunDaemonRejectsResize(t *testing.T) {
	cfg := daemonScenario()
	cfg.Failures = []FailureStep{{Kind: "resize", AtHours: 1, Scale: 0.5}}
	if _, err := RunDaemon(cfg, "http://127.0.0.1:0"); err == nil {
		t.Fatal("resize step accepted in daemon mode")
	}
}
