package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/testutil"
)

// The sharded runner drives one scenario through a shard.Router: each
// shard owns an identical replica of the scenario substrate (same
// topology, same capacities — networkFor is a pure function of the
// config) and its own engine; tenants spread across shards by the
// router's rendezvous hash. The timeline is the same one the
// single-engine path would run — request node IDs and failure-script
// mutations are valid on every replica — so a sharded run is the same
// workload horizontally scaled across S independent admission cells.
//
// Failure-script steps fan out fleet-wide: state batches go through
// ApplyAll, capacity resizes are clamped per shard against that
// shard's own live allocations. Invariants extend the single-engine
// set with per-shard conservation (each engine's live table vs its own
// network's residuals vs the runner's shard-tagged live view) and
// cross-shard conservation (no session owned by two shards, fleet
// totals closing against the router's Report).

// shardRunner drives one expanded timeline through a shard router.
type shardRunner struct {
	cfg    *Config
	router *shard.Router
	ids    []string
	res    *Result

	live       map[int]string           // request ID -> tenant name
	liveShard  map[int]string           // request ID -> admitting shard
	caps0      map[string][]float64     // per-shard original link capacities
	lastRec    map[string]*recov.Report // per-shard last absorbed recovery pass
	tb         strings.Builder
	checkEvery int
	events     int
	watchdog   time.Duration
}

// linef appends one transcript line.
func (r *shardRunner) linef(format string, args ...any) {
	fmt.Fprintf(&r.tb, format+"\n", args...)
}

// shardIDs names the router's shards: shard00, shard01, ... — zero-
// padded so lexicographic report order matches numeric order up to 100
// shards.
func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard%02d", i)
	}
	return ids
}

// runSharded is Run for cfg.Shards > 1.
func runSharded(cfg *Config) (*Result, error) {
	ids := shardIDs(cfg.Shards)
	reg := obs.NewRegistry()
	router, err := shard.New(shard.Options{
		Shards: ids,
		Build: func(string) (*sdn.Network, core.Planner, error) {
			// Every shard builds the same substrate replica: networkFor
			// draws topology and capacities from cfg.Seed alone.
			nw, err := networkFor(cfg)
			if err != nil {
				return nil, nil, err
			}
			planner, err := plannerFor(cfg, nw.NumNodes())
			if err != nil {
				return nil, nil, err
			}
			return nw, planner, nil
		},
		Workers:     cfg.Workers,
		BatchWindow: cfg.BatchWindow,
		Recovery:    recoveryPolicy(cfg),
		Registry:    reg,
		Policy:      cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()

	events, err := buildTimeline(cfg, router.Network(ids[0]))
	if err != nil {
		return nil, err
	}
	r := &shardRunner{
		cfg:    cfg,
		router: router,
		ids:    ids,
		res: &Result{
			Name:      cfg.Name,
			Policy:    cfg.Policy,
			Workers:   cfg.Workers,
			Shards:    cfg.Shards,
			PerTenant: make(map[string]*TenantStats),
		},
		live:       make(map[int]string),
		liveShard:  make(map[int]string),
		caps0:      make(map[string][]float64, len(ids)),
		lastRec:    make(map[string]*recov.Report, len(ids)),
		checkEvery: cfg.CheckEveryEvents,
		watchdog:   testutil.Watchdog(),
	}
	if r.checkEvery == 0 {
		r.checkEvery = defaultCheckEvery
	}
	for _, t := range cfg.Tenants {
		r.res.PerTenant[t.Name] = &TenantStats{}
	}
	for _, id := range ids {
		nw := router.Network(id)
		caps := make([]float64, nw.NumEdges())
		for e := range caps {
			caps[e] = nw.BandwidthCap(e)
		}
		r.caps0[id] = caps
	}
	start := time.Now()
	if err := r.drive(events); err != nil {
		return nil, err
	}
	r.res.ElapsedSeconds = time.Since(start).Seconds()
	r.res.FinalLive = len(r.live)
	rep := router.Report()
	r.res.ShardReports = rep.Shards
	// The runner transcript already interleaves every shard's decisions
	// in arrival order; folding the router's merged per-shard digest in
	// ties the fingerprint to both views of the run.
	r.linef("router merged=%s", rep.Merged)
	r.res.transcript = r.tb.String()
	sum := sha256.Sum256([]byte(r.res.transcript))
	r.res.Fingerprint = hex.EncodeToString(sum[:])
	return r.res, nil
}

// guard runs one router call under the liveness watchdog (the same
// contract as the single-engine runner's guard).
func (r *shardRunner) guard(op string, at float64, f func()) error {
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(r.watchdog):
		return fmt.Errorf("scenario %q: liveness violation: router %s wedged at t=%s (no response in %v)",
			r.cfg.Name, op, fmtG(at), r.watchdog)
	}
}

func (r *shardRunner) violatef(format string, args ...any) {
	if len(r.res.Violations) < maxViolations {
		r.res.Violations = append(r.res.Violations, fmt.Sprintf(format, args...))
	}
}

// drive processes the timeline in order, departs every session still
// live at the horizon, and closes with a full invariant sweep.
func (r *shardRunner) drive(events []event) error {
	for i := range events {
		ev := &events[i]
		var err error
		switch ev.kind {
		case evArrival:
			err = r.arrive(ev)
		case evDeparture:
			err = r.depart(ev.at, ev.reqID)
		case evFailure:
			err = r.failure(ev)
		}
		if err != nil {
			return err
		}
		r.events++
		r.checkBounds(ev.at)
		if r.events%r.checkEvery == 0 {
			if err := r.checkConservation(ev.at); err != nil {
				return err
			}
		}
	}
	for _, id := range r.liveIDs() {
		if err := r.depart(r.cfg.HorizonHours, id); err != nil {
			return err
		}
	}
	r.checkBounds(r.cfg.HorizonHours)
	if err := r.checkConservation(r.cfg.HorizonHours); err != nil {
		return err
	}
	r.checkDrained()
	r.linef("end admitted=%d rejected=%d departed=%d shed=%d repaired=%d+%d live=%d shards=%d",
		r.res.Admitted, r.res.Rejected, r.res.Departed,
		r.res.Shed, r.res.RepairedLocal, r.res.RepairedReplan, len(r.live), r.cfg.Shards)
	return nil
}

// arrive routes one request to its tenant's shard.
func (r *shardRunner) arrive(ev *event) error {
	req := ev.req
	tenant := r.cfg.Tenants[ev.tenant].Name
	ts := r.res.PerTenant[tenant]
	ts.Arrivals++
	r.res.Arrivals++
	var (
		sol *core.Solution
		err error
	)
	if gerr := r.guard("Admit", ev.at, func() { sol, err = r.router.Admit(tenant, req) }); gerr != nil {
		return gerr
	}
	if err != nil {
		ts.Rejected++
		r.res.Rejected++
		r.linef("t=%s reject req=%d tenant=%s reason=%s", fmtG(ev.at), req.ID, tenant, core.RejectReason(err))
		return nil
	}
	owner := r.router.Owner(req.ID)
	r.live[req.ID] = tenant
	r.liveShard[req.ID] = owner
	ts.Admitted++
	r.res.Admitted++
	if len(r.live) > r.res.PeakLive {
		r.res.PeakLive = len(r.live)
	}
	r.linef("t=%s admit req=%d tenant=%s shard=%s cost=%s servers=%v",
		fmtG(ev.at), req.ID, tenant, owner, fmtG(sol.OperationalCost), sol.Servers)
	return nil
}

// depart releases one session through the router's session-owner map.
func (r *shardRunner) depart(at float64, reqID int) error {
	if _, ok := r.live[reqID]; !ok {
		return nil
	}
	var err error
	if gerr := r.guard("Release", at, func() { _, err = r.router.Release(reqID) }); gerr != nil {
		return gerr
	}
	if err != nil {
		return fmt.Errorf("scenario %q: release req %d: %w", r.cfg.Name, reqID, err)
	}
	delete(r.live, reqID)
	delete(r.liveShard, reqID)
	r.res.Departed++
	r.linef("t=%s depart req=%d", fmtG(at), reqID)
	return nil
}

// failure fans one failure-script action out fleet-wide: state batches
// apply to every shard atomically per shard, resizes are clamped
// against each shard's own live allocations.
func (r *shardRunner) failure(ev *event) error {
	fa := ev.fail
	if fa.scale != 0 {
		applied := 0
		for _, id := range r.ids {
			muts := r.resizeMuts(id, fa.scale)
			if len(muts) == 0 {
				continue
			}
			var err error
			if gerr := r.guard("ApplyShard", ev.at, func() { err = r.router.ApplyShard(id, muts...) }); gerr != nil {
				return gerr
			}
			if err != nil {
				return fmt.Errorf("scenario %q: failure script step %q on %s: %w", r.cfg.Name, fa.label, id, err)
			}
			applied++
		}
		if applied == 0 {
			r.linef("t=%s fail %s (no-op)", fmtG(ev.at), fa.label)
			return nil
		}
		r.res.FailureBatches++
		r.linef("t=%s fail %s (%d shards)", fmtG(ev.at), fa.label, applied)
		return r.absorbRecovery(ev.at)
	}
	if len(fa.muts) == 0 {
		r.linef("t=%s fail %s (no-op)", fmtG(ev.at), fa.label)
		return nil
	}
	var err error
	if gerr := r.guard("ApplyAll", ev.at, func() { err = r.router.ApplyAll(fa.muts...) }); gerr != nil {
		return gerr
	}
	if err != nil {
		return fmt.Errorf("scenario %q: failure script step %q: %w", r.cfg.Name, fa.label, err)
	}
	r.res.FailureBatches++
	r.linef("t=%s fail %s (%d mutations x %d shards)", fmtG(ev.at), fa.label, len(fa.muts), len(r.ids))
	return r.absorbRecovery(ev.at)
}

// resizeMuts builds one shard's LinkCapacity batch for a resize step,
// clamped so that shard's live allocations are never cut.
func (r *shardRunner) resizeMuts(id string, scale float64) []engine.Mutation {
	nw := r.router.Network(id)
	caps0 := r.caps0[id]
	muts := make([]engine.Mutation, 0, nw.NumEdges())
	for e := 0; e < nw.NumEdges(); e++ {
		target := scale * caps0[e]
		if scale < 0 {
			target = caps0[e]
		}
		if alloc := nw.BandwidthCap(e) - nw.ResidualBandwidth(e); target < alloc {
			target = alloc
		}
		if target == nw.BandwidthCap(e) {
			continue
		}
		muts = append(muts, engine.Mutation{Kind: engine.LinkCapacity, ID: e, Capacity: target})
	}
	return muts
}

// absorbRecovery folds every shard's latest recovery pass into the
// runner's bookkeeping, in ascending shard-ID order so the transcript
// stays deterministic.
func (r *shardRunner) absorbRecovery(at float64) error {
	for _, id := range r.ids {
		eng := r.router.Engine(id)
		if eng == nil {
			continue
		}
		rep := eng.LastRecovery()
		if rep == nil || rep == r.lastRec[id] {
			continue
		}
		r.lastRec[id] = rep
		r.res.RecoveryPasses++
		r.res.RepairedLocal += rep.Local
		r.res.RepairedReplan += rep.Replanned
		r.res.Shed += rep.Shed
		r.res.RecoverySeconds = append(r.res.RecoverySeconds, rep.Duration.Seconds())
		for _, o := range rep.Outcomes {
			if o.Mode != recov.ModeShed {
				continue
			}
			if _, ok := r.live[o.RequestID]; !ok {
				return fmt.Errorf("scenario %q: shard %s shed req %d the runner never saw live", r.cfg.Name, id, o.RequestID)
			}
			if owner := r.liveShard[o.RequestID]; owner != id {
				return fmt.Errorf("scenario %q: shard %s shed req %d owned by %s", r.cfg.Name, id, o.RequestID, owner)
			}
			delete(r.live, o.RequestID)
			delete(r.liveShard, o.RequestID)
		}
		r.linef("t=%s recovery shard=%s local=%d replan=%d shed=%d\n%s",
			fmtG(at), id, rep.Local, rep.Replanned, rep.Shed, rep.Fingerprint())
	}
	return nil
}

// checkBounds runs the cheap residual-bounds sweep on every shard.
func (r *shardRunner) checkBounds(at float64) {
	for _, id := range r.ids {
		nw := r.router.Network(id)
		for e := 0; e < nw.NumEdges(); e++ {
			free, cap := nw.ResidualBandwidth(e), nw.BandwidthCap(e)
			if free < -eps || free > cap+eps || math.IsNaN(free) {
				r.violatef("t=%s shard %s link %d residual %g outside [0, %g]", fmtG(at), id, e, free, cap)
			}
		}
		for _, v := range nw.Servers() {
			free, cap := nw.ResidualCompute(v), nw.ComputeCap(v)
			if free < -eps || free > cap+eps || math.IsNaN(free) {
				r.violatef("t=%s shard %s server %d residual %g outside [0, %g]", fmtG(at), id, v, free, cap)
			}
		}
	}
}

// checkConservation reconciles, per shard, the engine's live table
// against that shard's network residuals and the runner's shard-tagged
// live view — then closes the cross-shard equation: every live session
// is owned by exactly one shard and the fleet totals match the
// router's report.
func (r *shardRunner) checkConservation(at float64) error {
	tol := func(want, cap float64) float64 {
		return eps*math.Max(1, math.Abs(want)) + 1e-9*math.Abs(cap)
	}
	totalLive := 0
	for _, id := range r.ids {
		eng := r.router.Engine(id)
		nw := r.router.Network(id)
		var lives []*core.Solution
		if gerr := r.guard("Lives", at, func() { lives = eng.Lives() }); gerr != nil {
			return gerr
		}
		totalLive += len(lives)

		mine := 0
		for _, owner := range r.liveShard {
			if owner == id {
				mine++
			}
		}
		if len(lives) != mine {
			r.violatef("t=%s shard %s live table has %d sessions, runner tracks %d", fmtG(at), id, len(lives), mine)
		}
		wantLink := make([]float64, nw.NumEdges())
		wantSrv := make(map[int]float64)
		for _, sol := range lives {
			owner, ok := r.liveShard[sol.Request.ID]
			if !ok {
				r.violatef("t=%s shard %s live table holds req %d the runner departed", fmtG(at), id, sol.Request.ID)
			} else if owner != id {
				r.violatef("t=%s req %d live on shard %s but owned by %s", fmtG(at), sol.Request.ID, id, owner)
			}
			alloc := core.AllocationFor(sol.Request, sol.Tree)
			for e, bw := range alloc.Links {
				wantLink[e] += bw
			}
			for v, mhz := range alloc.Servers {
				wantSrv[v] += mhz
			}
		}
		for e := 0; e < nw.NumEdges(); e++ {
			cap := nw.BandwidthCap(e)
			got := cap - nw.ResidualBandwidth(e)
			if math.Abs(got-wantLink[e]) > tol(wantLink[e], cap) {
				r.violatef("t=%s shard %s link %d allocated %g but live table sums to %g", fmtG(at), id, e, got, wantLink[e])
			}
		}
		for _, v := range nw.Servers() {
			cap := nw.ComputeCap(v)
			got := cap - nw.ResidualCompute(v)
			if math.Abs(got-wantSrv[v]) > tol(wantSrv[v], cap) {
				r.violatef("t=%s shard %s server %d allocated %g but live table sums to %g", fmtG(at), id, v, got, wantSrv[v])
			}
		}
		// Cross-shard session ownership: the router must agree with the
		// runner on who admitted every session this shard holds.
		for _, sol := range lives {
			if owner := r.router.Owner(sol.Request.ID); owner != id {
				r.violatef("t=%s router owner map says req %d belongs to %q, engine %s holds it",
					fmtG(at), sol.Request.ID, owner, id)
			}
		}
	}
	if totalLive != len(r.live) {
		r.violatef("t=%s shards hold %d sessions total, runner tracks %d", fmtG(at), totalLive, len(r.live))
	}
	rep := r.router.Report()
	if rep.Live != len(r.live) {
		r.violatef("t=%s router report live=%d, runner tracks %d", fmtG(at), rep.Live, len(r.live))
	}
	if rep.Admitted != r.res.Admitted || rep.Rejected != r.res.Rejected || rep.Departed != r.res.Departed {
		r.violatef("t=%s router report admitted=%d rejected=%d departed=%d, runner counts %d/%d/%d",
			fmtG(at), rep.Admitted, rep.Rejected, rep.Departed,
			r.res.Admitted, r.res.Rejected, r.res.Departed)
	}
	return nil
}

// checkDrained asserts the end state on every shard: residuals whole
// again once every session has departed.
func (r *shardRunner) checkDrained() {
	if len(r.live) != 0 {
		r.violatef("end: %d sessions still live after horizon drain", len(r.live))
		return
	}
	for _, id := range r.ids {
		nw := r.router.Network(id)
		for e := 0; e < nw.NumEdges(); e++ {
			if diff := nw.BandwidthCap(e) - nw.ResidualBandwidth(e); math.Abs(diff) > eps {
				r.violatef("end: shard %s link %d still has %g Mbps allocated after all departures", id, e, diff)
			}
		}
		for _, v := range nw.Servers() {
			if diff := nw.ComputeCap(v) - nw.ResidualCompute(v); math.Abs(diff) > eps {
				r.violatef("end: shard %s server %d still has %g MHz allocated after all departures", id, v, diff)
			}
		}
	}
}

// liveIDs returns the runner's live request IDs in ascending order.
func (r *shardRunner) liveIDs() []int {
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
