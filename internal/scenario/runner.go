package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/testutil"
	"nfvmcast/internal/topology"
)

// TenantStats aggregates one workload class's outcomes.
type TenantStats struct {
	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
}

// Result is what one scenario run produced. Fingerprint is a SHA-256
// over the decision transcript (every admit/reject/depart/failure/
// recovery outcome with exact costs) and contains no timing, so it is
// byte-identical across engine worker counts, machines and runs;
// RecoverySeconds and ElapsedSeconds carry the wall-clock side.
type Result struct {
	Name           string                  `json:"name"`
	Policy         string                  `json:"policy"`
	Workers        int                     `json:"workers"`
	Shards         int                     `json:"shards,omitempty"`
	Arrivals       int                     `json:"arrivals"`
	Admitted       int                     `json:"admitted"`
	Rejected       int                     `json:"rejected"`
	RuleRejected   int                     `json:"ruleRejected"`
	Departed       int                     `json:"departed"`
	Shed           int                     `json:"shed"`
	RepairedLocal  int                     `json:"repairedLocal"`
	RepairedReplan int                     `json:"repairedReplan"`
	FailureBatches int                     `json:"failureBatches"`
	RecoveryPasses int                     `json:"recoveryPasses"`
	PeakLive       int                     `json:"peakLive"`
	FinalLive      int                     `json:"finalLive"`
	PerTenant      map[string]*TenantStats `json:"perTenant"`
	// Violations holds every invariant breach observed during the run;
	// a clean run has none. Violations are reported, not fatal, so one
	// run surfaces every breach at once.
	Violations      []string  `json:"violations,omitempty"`
	Fingerprint     string    `json:"fingerprint"`
	RecoverySeconds []float64 `json:"recoverySeconds,omitempty"`
	ElapsedSeconds  float64   `json:"elapsedSeconds"`
	// ShardReports carries the router's per-shard fan-in (sharded runs
	// only): per-shard decision counts and transcript fingerprints in
	// ascending shard-ID order.
	ShardReports []shard.ShardReport `json:"shardReports,omitempty"`

	transcript string
}

// Transcript returns the full decision transcript the fingerprint
// hashes — the artifact to diff when two runs disagree.
func (r *Result) Transcript() string { return r.transcript }

// Every engine call the runner makes is bounded by the shared
// testutil.Watchdog() budget (2 minutes scaled by NFVMCAST_TEST_SLOW).
// The single-writer engine must never wedge: a call that does not
// return within this budget is a liveness violation, not slowness.

// defaultCheckEvery is the cadence of the O(live·tree) conservation
// check; cheap residual-bounds checks run every event.
const defaultCheckEvery = 32

// runner drives one expanded timeline through one engine.
type runner struct {
	cfg  *Config
	nw   *sdn.Network
	eng  *engine.Engine
	ctrl *sdn.Controller
	aobs *obs.AdmissionObs
	res  *Result

	live       map[int]string // request ID -> tenant name, runner-side live view
	caps0      []float64      // original link capacities, resize baseline
	lastRec    *recov.Report
	tb         strings.Builder
	checkEvery int
	events     int
	watchdog   time.Duration
}

// networkFor builds the scenario's substrate network. The seed feeds
// both topology synthesis (waxman/fattree) and capacity/server
// placement, so one (config, seed) pair names one concrete network.
func networkFor(cfg *Config) (*sdn.Network, error) {
	var (
		topo *topology.Topology
		err  error
	)
	switch cfg.Topology.Name {
	case "geant":
		topo = topology.GEANT()
	case "as1755":
		topo = topology.AS1755()
	case "as4755":
		topo = topology.AS4755()
	case "waxman":
		topo, err = topology.WaxmanDegree(cfg.Topology.Size, topology.DefaultAvgDegree, 0.14, cfg.Seed)
	case "fattree":
		topo, err = topology.FatTree(4, cfg.Seed)
	default:
		err = fmt.Errorf("scenario %q: unknown topology %q", cfg.Name, cfg.Topology.Name)
	}
	if err != nil {
		return nil, err
	}
	return sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(cfg.Seed)))
}

// plannerFor builds the scenario's admission planner from the policy
// registry (core.Planners lists what resolves).
func plannerFor(cfg *Config, n int) (core.Planner, error) {
	p, err := core.NewPlanner(cfg.Policy, core.PlannerOptions{Nodes: n})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: unknown policy %q", cfg.Name, cfg.Policy)
	}
	return p, nil
}

// recoveryPolicy maps the config's recovery mode onto an engine
// policy. An empty mode means self-healing on exactly when the
// scenario injects failures.
func recoveryPolicy(cfg *Config) *recov.Policy {
	mode := cfg.Recovery
	if mode == "" {
		if len(cfg.Failures) == 0 {
			mode = "off"
		} else {
			mode = "default"
		}
	}
	switch mode {
	case "default":
		pol := recov.DefaultPolicy()
		return &pol
	case "replan":
		return &recov.Policy{Gamma: 0, RetryBudget: 2}
	default:
		return nil
	}
}

// fmtG renders a float exactly (shortest round-trip form), the only
// float format allowed into the transcript.
func fmtG(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Run validates cfg, expands its timeline and drives the engine
// through it, checking invariants as it goes. The error return is for
// broken configs and harness-level failures (a wedged writer, an
// inconsistent recovery report); engine-level invariant breaches land
// in Result.Violations so a run reports them all.
func Run(cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	nw, err := networkFor(cfg)
	if err != nil {
		return nil, err
	}
	events, err := buildTimeline(cfg, nw)
	if err != nil {
		return nil, err
	}
	planner, err := plannerFor(cfg, nw.NumNodes())
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	aobs := obs.NewAdmissionObs(reg, cfg.Policy, obs.AdmissionObsOptions{})
	eng := engine.New(nw, planner, engine.Options{
		Workers:     cfg.Workers,
		Obs:         aobs,
		Recovery:    recoveryPolicy(cfg),
		BatchWindow: cfg.BatchWindow,
	})
	defer eng.Close()
	var ctrl *sdn.Controller
	if cfg.MaxRulesPerSwitch > 0 {
		if ctrl, err = sdn.NewControllerWithRuleLimit(nw, cfg.MaxRulesPerSwitch); err != nil {
			return nil, err
		}
	}
	r := &runner{
		cfg:  cfg,
		nw:   nw,
		eng:  eng,
		ctrl: ctrl,
		aobs: aobs,
		res: &Result{
			Name:      cfg.Name,
			Policy:    cfg.Policy,
			Workers:   cfg.Workers,
			Shards:    cfg.Shards,
			PerTenant: make(map[string]*TenantStats),
		},
		live:       make(map[int]string),
		checkEvery: cfg.CheckEveryEvents,
		watchdog:   testutil.Watchdog(),
	}
	if r.checkEvery == 0 {
		r.checkEvery = defaultCheckEvery
	}
	for _, t := range cfg.Tenants {
		r.res.PerTenant[t.Name] = &TenantStats{}
	}
	r.caps0 = make([]float64, nw.NumEdges())
	for e := range r.caps0 {
		r.caps0[e] = nw.BandwidthCap(e)
	}
	start := time.Now()
	if err := r.drive(events); err != nil {
		return nil, err
	}
	r.res.ElapsedSeconds = time.Since(start).Seconds()
	r.res.FinalLive = len(r.live)
	r.res.transcript = r.tb.String()
	sum := sha256.Sum256([]byte(r.res.transcript))
	r.res.Fingerprint = hex.EncodeToString(sum[:])
	return r.res, nil
}

// linef appends one transcript line.
func (r *runner) linef(format string, args ...any) {
	fmt.Fprintf(&r.tb, format+"\n", args...)
}

// guard runs one engine call under the liveness watchdog. The engine
// owns a single writer goroutine; any call that fails to return is a
// wedged writer — the one failure mode a black-box harness cannot
// observe from return values alone.
func (r *runner) guard(op string, at float64, f func()) error {
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(r.watchdog):
		return fmt.Errorf("scenario %q: liveness violation: engine %s wedged at t=%s (no response in %v)",
			r.cfg.Name, op, fmtG(at), r.watchdog)
	}
}

// drive processes the timeline in order, departs every session still
// live at the horizon, and closes with a full invariant sweep.
func (r *runner) drive(events []event) error {
	for i := range events {
		ev := &events[i]
		var err error
		switch ev.kind {
		case evArrival:
			err = r.arrive(ev)
		case evDeparture:
			err = r.depart(ev.at, ev.reqID)
		case evFailure:
			err = r.failure(ev)
		}
		if err != nil {
			return err
		}
		r.events++
		r.checkBounds(ev.at)
		if r.events%r.checkEvery == 0 {
			if err := r.checkConservation(ev.at); err != nil {
				return err
			}
		}
	}
	// Horizon: everything still holding resources departs, in ID order
	// (the iteration below is over live IDs sorted by the caller's
	// insertion pattern — depart explicitly sorted to stay deterministic).
	for _, id := range r.liveIDs() {
		if err := r.depart(r.cfg.HorizonHours, id); err != nil {
			return err
		}
	}
	r.checkBounds(r.cfg.HorizonHours)
	if err := r.checkConservation(r.cfg.HorizonHours); err != nil {
		return err
	}
	r.checkDrained()
	r.linef("end admitted=%d rejected=%d rule-rejected=%d departed=%d shed=%d repaired=%d+%d live=%d",
		r.res.Admitted, r.res.Rejected, r.res.RuleRejected, r.res.Departed,
		r.res.Shed, r.res.RepairedLocal, r.res.RepairedReplan, len(r.live))
	return nil
}

// arrive admits one request and, under a rule-limited controller,
// compiles the admitted tree into flow rules (departing the session
// again if a switch table overflows).
func (r *runner) arrive(ev *event) error {
	req := ev.req
	tenant := r.cfg.Tenants[ev.tenant].Name
	ts := r.res.PerTenant[tenant]
	ts.Arrivals++
	r.res.Arrivals++
	var (
		sol *core.Solution
		err error
	)
	if gerr := r.guard("Admit", ev.at, func() { sol, err = r.eng.Admit(req) }); gerr != nil {
		return gerr
	}
	if err != nil {
		ts.Rejected++
		r.res.Rejected++
		r.linef("t=%s reject req=%d tenant=%s reason=%s", fmtG(ev.at), req.ID, tenant, core.RejectReason(err))
		return nil
	}
	if r.ctrl != nil {
		if ierr := r.ctrl.Install(req, sol.Tree); ierr != nil {
			if !errors.Is(ierr, sdn.ErrTableFull) {
				return fmt.Errorf("scenario %q: install req %d: %w", r.cfg.Name, req.ID, ierr)
			}
			if gerr := r.guard("Depart", ev.at, func() { _, err = r.eng.Depart(req.ID) }); gerr != nil {
				return gerr
			}
			if err != nil {
				return fmt.Errorf("scenario %q: depart rule-rejected req %d: %w", r.cfg.Name, req.ID, err)
			}
			ts.Rejected++
			r.res.RuleRejected++
			r.linef("t=%s rule-reject req=%d tenant=%s", fmtG(ev.at), req.ID, tenant)
			return nil
		}
	}
	r.live[req.ID] = tenant
	ts.Admitted++
	r.res.Admitted++
	if len(r.live) > r.res.PeakLive {
		r.res.PeakLive = len(r.live)
	}
	r.linef("t=%s admit req=%d tenant=%s cost=%s servers=%v",
		fmtG(ev.at), req.ID, tenant, fmtG(sol.OperationalCost), sol.Servers)
	return nil
}

// depart releases one session if it is still live; sessions shed by
// recovery or bounced by the rule budget have already released.
func (r *runner) depart(at float64, reqID int) error {
	if _, ok := r.live[reqID]; !ok {
		return nil
	}
	var err error
	if gerr := r.guard("Depart", at, func() { _, err = r.eng.Depart(reqID) }); gerr != nil {
		return gerr
	}
	if err != nil {
		return fmt.Errorf("scenario %q: depart req %d: %w", r.cfg.Name, reqID, err)
	}
	if r.ctrl != nil && r.ctrl.Installed(reqID) {
		if err := r.ctrl.Uninstall(reqID); err != nil {
			return fmt.Errorf("scenario %q: uninstall req %d: %w", r.cfg.Name, reqID, err)
		}
	}
	delete(r.live, reqID)
	r.res.Departed++
	r.linef("t=%s depart req=%d", fmtG(at), reqID)
	return nil
}

// failure applies one failure-script action through the typed Apply
// surface and reconciles the runner's live view (and the flow tables)
// with whatever the automatic recovery pass decided.
func (r *runner) failure(ev *event) error {
	fa := ev.fail
	muts := fa.muts
	if fa.scale != 0 {
		muts = r.resizeMuts(fa.scale)
	}
	if len(muts) == 0 {
		r.linef("t=%s fail %s (no-op)", fmtG(ev.at), fa.label)
		return nil
	}
	var err error
	if gerr := r.guard("Apply", ev.at, func() { err = r.eng.Apply(muts...) }); gerr != nil {
		return gerr
	}
	if err != nil {
		return fmt.Errorf("scenario %q: failure script step %q: %w", r.cfg.Name, fa.label, err)
	}
	r.res.FailureBatches++
	r.linef("t=%s fail %s (%d mutations)", fmtG(ev.at), fa.label, len(muts))
	return r.absorbRecovery(ev.at)
}

// resizeMuts builds the LinkCapacity batch for a resize step: every
// link moves to scale× its original capacity (scale < 0 restores the
// original), clamped so live allocations are never cut — right-sizing
// is a capacity decision, not an implicit failure.
func (r *runner) resizeMuts(scale float64) []engine.Mutation {
	muts := make([]engine.Mutation, 0, r.nw.NumEdges())
	for e := 0; e < r.nw.NumEdges(); e++ {
		target := scale * r.caps0[e]
		if scale < 0 {
			target = r.caps0[e]
		}
		if alloc := r.nw.BandwidthCap(e) - r.nw.ResidualBandwidth(e); target < alloc {
			target = alloc
		}
		if target == r.nw.BandwidthCap(e) {
			continue
		}
		muts = append(muts, engine.Mutation{Kind: engine.LinkCapacity, ID: e, Capacity: target})
	}
	return muts
}

// absorbRecovery folds the engine's latest recovery pass (if the last
// failure triggered one) into the runner's bookkeeping: shed sessions
// leave the live view and the flow tables, repaired sessions get their
// replacement trees re-compiled into rules.
func (r *runner) absorbRecovery(at float64) error {
	rep := r.eng.LastRecovery()
	if rep == nil || rep == r.lastRec {
		return nil
	}
	r.lastRec = rep
	r.res.RecoveryPasses++
	r.res.RepairedLocal += rep.Local
	r.res.RepairedReplan += rep.Replanned
	r.res.Shed += rep.Shed
	r.res.RecoverySeconds = append(r.res.RecoverySeconds, rep.Duration.Seconds())
	for _, o := range rep.Outcomes {
		if o.Mode == recov.ModeShed {
			if _, ok := r.live[o.RequestID]; !ok {
				return fmt.Errorf("scenario %q: recovery shed req %d the runner never saw live", r.cfg.Name, o.RequestID)
			}
			delete(r.live, o.RequestID)
			if r.ctrl != nil && r.ctrl.Installed(o.RequestID) {
				if err := r.ctrl.Uninstall(o.RequestID); err != nil {
					return fmt.Errorf("scenario %q: uninstall shed req %d: %w", r.cfg.Name, o.RequestID, err)
				}
			}
			continue
		}
		if r.ctrl == nil || o.Solution == nil {
			continue
		}
		// Re-compile the replacement tree. A replacement that overflows
		// a flow table is departed like any other rule rejection.
		if r.ctrl.Installed(o.RequestID) {
			if err := r.ctrl.Uninstall(o.RequestID); err != nil {
				return fmt.Errorf("scenario %q: uninstall repaired req %d: %w", r.cfg.Name, o.RequestID, err)
			}
		}
		if err := r.ctrl.Install(o.Solution.Request, o.Solution.Tree); err != nil {
			if !errors.Is(err, sdn.ErrTableFull) {
				return fmt.Errorf("scenario %q: reinstall repaired req %d: %w", r.cfg.Name, o.RequestID, err)
			}
			var derr error
			if gerr := r.guard("Depart", at, func() { _, derr = r.eng.Depart(o.RequestID) }); gerr != nil {
				return gerr
			}
			if derr != nil {
				return fmt.Errorf("scenario %q: depart rule-bounced repair req %d: %w", r.cfg.Name, o.RequestID, derr)
			}
			delete(r.live, o.RequestID)
			r.res.RuleRejected++
			r.linef("t=%s rule-reject repaired req=%d", fmtG(at), o.RequestID)
		}
	}
	r.linef("t=%s recovery local=%d replan=%d shed=%d\n%s",
		fmtG(at), rep.Local, rep.Replanned, rep.Shed, rep.Fingerprint())
	return nil
}

// liveIDs returns the runner's live request IDs in ascending order.
func (r *runner) liveIDs() []int {
	ids := make([]int, 0, len(r.live))
	for id := range r.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
