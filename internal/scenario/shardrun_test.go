package scenario

import "testing"

// TestShardedFingerprintDeterminism extends the harness's headline
// determinism property to the sharded path: the full decision
// transcript — including each shard's fan-in digest — is byte-identical
// across engine worker counts and commit batch windows, because the
// runner drives arrivals sequentially and per-shard transcripts are
// window- and worker-invariant (the shard package's oracle property).
func TestShardedFingerprintDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full sharded runs")
	}
	var base *Result
	for _, mode := range []struct{ workers, window int }{{1, 1}, {4, 16}, {8, 64}} {
		cfg, ok := LibraryConfig("sharded-tenants")
		if !ok {
			t.Fatal("library scenario sharded-tenants missing")
		}
		cfg.Workers = mode.workers
		cfg.BatchWindow = mode.window
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("workers=%d window=%d invariant violation: %s", mode.workers, mode.window, v)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Fingerprint != base.Fingerprint {
			t.Errorf("workers=%d window=%d fingerprint %s != baseline %s\ntranscript diff hint:\n%s",
				mode.workers, mode.window, res.Fingerprint, base.Fingerprint,
				firstTranscriptDiff(base.Transcript(), res.Transcript()))
		}
		for i, sr := range res.ShardReports {
			if sr.Fingerprint != base.ShardReports[i].Fingerprint {
				t.Errorf("workers=%d window=%d shard %s fingerprint diverged", mode.workers, mode.window, sr.ID)
			}
		}
	}
}

// TestSingleShardIsTheSingleEnginePath pins the compatibility contract:
// shards 0 and 1 both take the single-engine path and produce
// byte-identical results — opting a config into the sharding schema
// without actually splitting it changes nothing.
func TestSingleShardIsTheSingleEnginePath(t *testing.T) {
	run := func(shards int) *Result {
		cfg, ok := LibraryConfig("multi-tenant")
		if !ok {
			t.Fatal("library scenario multi-tenant missing")
		}
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r0, r1 := run(0), run(1)
	if r0.Fingerprint != r1.Fingerprint {
		t.Errorf("shards=0 and shards=1 fingerprints differ: %s vs %s\n%s",
			r0.Fingerprint, r1.Fingerprint, firstTranscriptDiff(r0.Transcript(), r1.Transcript()))
	}
	if len(r1.ShardReports) != 0 {
		t.Errorf("single-engine path must not produce shard reports, got %d", len(r1.ShardReports))
	}
}
