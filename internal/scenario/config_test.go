package scenario

import (
	"strings"
	"testing"
)

// base returns a minimal valid config the error-path cases mutate.
func base() *Config {
	return &Config{
		Name:         "t",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         1,
		HorizonHours: 2,
		Tenants: []Tenant{{
			Name:   "a",
			Phases: []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 2, RatePerHour: 10}},
		}},
	}
}

// TestConfigValidationGoldens drives every validation path and pins
// the exact error string: the messages are part of the harness's
// contract (operators read them, the CLI prints them verbatim).
func TestConfigValidationGoldens(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"missing name", func(c *Config) { c.Name = "" },
			`scenario: config needs a name`},
		{"unknown topology", func(c *Config) { c.Topology.Name = "ring" },
			`scenario "t": unknown topology "ring"`},
		{"waxman too small", func(c *Config) { c.Topology = TopologySpec{Name: "waxman", Size: 5} },
			`scenario "t": waxman topology needs size >= 10, got 5`},
		{"unknown policy", func(c *Config) { c.Policy = "Greedy" },
			`scenario "t": unknown policy "Greedy"`},
		{"zero horizon", func(c *Config) { c.HorizonHours = 0 },
			`scenario "t": horizonHours 0 must be positive`},
		{"no tenants", func(c *Config) { c.Tenants = nil },
			`scenario "t": needs at least one tenant`},
		{"unknown recovery", func(c *Config) { c.Recovery = "heal" },
			`scenario "t": unknown recovery mode "heal"`},
		{"negative rule budget", func(c *Config) { c.MaxRulesPerSwitch = -1 },
			`scenario "t": maxRulesPerSwitch -1 must be >= 0`},
		{"negative check cadence", func(c *Config) { c.CheckEveryEvents = -2 },
			`scenario "t": checkEveryEvents -2 must be >= 0`},
		{"negative shards", func(c *Config) { c.Shards = -2 },
			`scenario "t": shards -2 must be >= 0`},
		{"sharded rule budget", func(c *Config) { c.Shards = 2; c.MaxRulesPerSwitch = 8 },
			`scenario "t": sharded runs cannot attach a rule-limited controller (shards=2, maxRulesPerSwitch=8)`},
		{"negative batch window", func(c *Config) { c.BatchWindow = -1 },
			`scenario "t": batchWindow -1 must be >= 0`},
		{"tenant without name", func(c *Config) { c.Tenants[0].Name = "" },
			`scenario "t": tenant 0 needs a name`},
		{"duplicate tenant", func(c *Config) { c.Tenants = append(c.Tenants, c.Tenants[0]) },
			`scenario "t": duplicate tenant name "a"`},
		{"tenant without phases", func(c *Config) { c.Tenants[0].Phases = nil },
			`scenario "t": tenant "a" needs at least one phase`},
		{"inverted bandwidth range", func(c *Config) { c.Tenants[0].BandwidthMbps = [2]float64{200, 100} },
			`scenario "t": tenant "a": invalid bandwidth range [200 100]`},
		{"zero chain minimum", func(c *Config) { c.Tenants[0].ChainLength = [2]int{0, 3} },
			`scenario "t": tenant "a": invalid chain length range [0 3]`},
		{"destination ratio above one", func(c *Config) { c.Tenants[0].DestRatio = [2]float64{0.5, 1.5} },
			`scenario "t": tenant "a": invalid destination ratio range [0.5 1.5]`},
		{"negative holding time", func(c *Config) { c.Tenants[0].MeanHoldingHours = -1 },
			`scenario "t": tenant "a": invalid mean holding time -1`},
		{"unknown phase kind", func(c *Config) { c.Tenants[0].Phases[0].Kind = "burst" },
			`scenario "t": tenant "a": phase 0: unknown kind "burst"`},
		{"empty phase interval", func(c *Config) { c.Tenants[0].Phases[0].EndHours = 0 },
			`scenario "t": tenant "a": phase 0: bounds [0, 0) are not an interval`},
		{"phase past horizon", func(c *Config) { c.Tenants[0].Phases[0].EndHours = 5 },
			`scenario "t": tenant "a": phase 0: endHours 5 exceeds horizon 2`},
		{"zero rate", func(c *Config) { c.Tenants[0].Phases[0].RatePerHour = 0 },
			`scenario "t": tenant "a": phase 0: ratePerHour 0 must be positive`},
		{"negative hot pool", func(c *Config) {
			c.Tenants[0].Phases[0].Kind = PhaseFlash
			c.Tenants[0].Phases[0].HotDestinations = -3
		}, `scenario "t": tenant "a": phase 0: hotDestinations -3 must be >= 0`},
		{"affinity above one", func(c *Config) {
			c.Tenants[0].Phases[0].Kind = PhaseFlash
			c.Tenants[0].Phases[0].HotAffinity = 1.5
		}, `scenario "t": tenant "a": phase 0: hotAffinity 1.5 outside [0, 1]`},
		{"amplitude above one", func(c *Config) {
			c.Tenants[0].Phases[0].Kind = PhaseDiurnal
			c.Tenants[0].Phases[0].Amplitude = 2
		}, `scenario "t": tenant "a": phase 0: amplitude 2 outside [0, 1]`},
		{"negative period", func(c *Config) {
			c.Tenants[0].Phases[0].Kind = PhaseDiurnal
			c.Tenants[0].Phases[0].PeriodHours = -6
		}, `scenario "t": tenant "a": phase 0: periodHours -6 must be >= 0`},
		{"failure past horizon", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailLink, ID: 0, AtHours: 2}}
		}, `scenario "t": failure 0: atHours 2 outside [0, 2)`},
		{"negative duration", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailLink, ID: 0, AtHours: 1, DurationHours: -1}}
		}, `scenario "t": failure 0: durationHours -1 must be >= 0`},
		{"negative link id", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailLink, ID: -1, AtHours: 1}}
		}, `scenario "t": failure 0: id -1 must be >= 0`},
		{"negative epicenter", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailRegion, Epicenter: -2, RadiusHops: 1, AtHours: 1}}
		}, `scenario "t": failure 0: epicenter -2 must be >= 0`},
		{"zero radius", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailRegion, Epicenter: 0, AtHours: 1}}
		}, `scenario "t": failure 0: radiusHops 0 must be >= 1`},
		{"empty drain", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailDrain, AtHours: 1}}
		}, `scenario "t": failure 0: drain needs servers or a positive count`},
		{"negative drain server", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailDrain, Servers: []int{3, -1}, AtHours: 1}}
		}, `scenario "t": failure 0: drain server -1 must be >= 0`},
		{"negative stagger", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailDrain, Count: 2, AtHours: 1, StaggerHours: -0.5}}
		}, `scenario "t": failure 0: staggerHours -0.5 must be >= 0`},
		{"zero resize scale", func(c *Config) {
			c.Failures = []FailureStep{{Kind: FailResize, AtHours: 1}}
		}, `scenario "t": failure 0: scale 0 must be positive`},
		{"unknown failure kind", func(c *Config) {
			c.Failures = []FailureStep{{Kind: "meteor", AtHours: 1}}
		}, `scenario "t": failure 0: unknown kind "meteor"`},
		{"overlapping link failures", func(c *Config) {
			c.Failures = []FailureStep{
				{Kind: FailLink, ID: 4, AtHours: 0.5, DurationHours: 1},
				{Kind: FailLink, ID: 4, AtHours: 1, DurationHours: 0.5},
			}
		}, `scenario "t": failures 0 and 1 overlap on link 4 ([0.5, 1.5) vs [1, 1.5))`},
		{"drain overlaps server failure", func(c *Config) {
			c.Failures = []FailureStep{
				{Kind: FailServer, ID: 7, AtHours: 0.25},
				{Kind: FailDrain, Servers: []int{7}, AtHours: 1, DurationHours: 0.5},
			}
		}, `scenario "t": failures 0 and 1 overlap on server 7 ([0.25, +Inf) vs [1, 1.5))`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("want error %q, got nil", tc.want)
			}
			if err.Error() != tc.want {
				t.Errorf("golden mismatch:\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base config must be valid, got: %v", err)
	}
}

// TestParseRejectsUnknownFields pins the schema-typo guard.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name": "x", "topo": "geant"}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("want unknown-field error, got %v", err)
	}
}

// TestParseValidConfig round-trips a JSON scenario through Parse.
func TestParseValidConfig(t *testing.T) {
	const doc = `{
		"name": "json-smoke",
		"topology": {"name": "geant"},
		"policy": "SP",
		"seed": 3,
		"horizonHours": 1,
		"tenants": [{
			"name": "a",
			"phases": [{"kind": "steady", "startHours": 0, "endHours": 1, "ratePerHour": 5}]
		}],
		"failures": [{"kind": "link", "id": 2, "atHours": 0.5, "durationHours": 0.1}]
	}`
	cfg, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "json-smoke" || cfg.Policy != "SP" || len(cfg.Failures) != 1 {
		t.Errorf("parse dropped fields: %+v", cfg)
	}
}

// TestLibraryIsValid: every shipped scenario must pass its own
// validator — the library is the schema's reference corpus.
func TestLibraryIsValid(t *testing.T) {
	seen := map[string]bool{}
	for _, cfg := range Library() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("library scenario %q invalid: %v", cfg.Name, err)
		}
		if seen[cfg.Name] {
			t.Errorf("duplicate library scenario name %q", cfg.Name)
		}
		seen[cfg.Name] = true
	}
	if len(seen) < 6 {
		t.Errorf("library ships %d scenarios, want >= 6", len(seen))
	}
}
