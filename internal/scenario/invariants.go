package scenario

import (
	"fmt"
	"math"

	"nfvmcast/internal/core"
)

// The harness's continuous invariants. Each breach is recorded in
// Result.Violations rather than aborting the run, so one run surfaces
// every breach; tests then assert the list is empty.
//
//   - residual bounds (every event): 0 <= free <= cap on every link
//     and server — an allocator double-release or over-commit shows up
//     here first;
//   - conservation (every checkEvery events and at the end): for every
//     link and server, cap − free equals the sum of allocations of the
//     engine's live table, and that table matches the runner's
//     independent live view — the live table and the residual network
//     must tell the same story;
//   - session accounting: the obs counters close the equation
//     admitted − departed − shed = live, and the live gauge and the
//     engine agree on the count.

// tolerance for float residual comparisons: allocations are sums of
// O(live·tree) float64 terms.
const eps = 1e-6

// maxViolations caps the report so a systemic breach doesn't drown the
// run in millions of identical lines.
const maxViolations = 32

func (r *runner) violatef(format string, args ...any) {
	if len(r.res.Violations) < maxViolations {
		r.res.Violations = append(r.res.Violations, fmt.Sprintf(format, args...))
	}
}

// checkBounds runs the cheap residual-bounds sweep.
func (r *runner) checkBounds(at float64) {
	for e := 0; e < r.nw.NumEdges(); e++ {
		free, cap := r.nw.ResidualBandwidth(e), r.nw.BandwidthCap(e)
		if free < -eps || free > cap+eps || math.IsNaN(free) {
			r.violatef("t=%s link %d residual %g outside [0, %g]", fmtG(at), e, free, cap)
		}
	}
	for _, v := range r.nw.Servers() {
		free, cap := r.nw.ResidualCompute(v), r.nw.ComputeCap(v)
		if free < -eps || free > cap+eps || math.IsNaN(free) {
			r.violatef("t=%s server %d residual %g outside [0, %g]", fmtG(at), v, free, cap)
		}
	}
}

// checkConservation reconciles three independent views of "who holds
// what": the engine's live table, the network's residuals, and the
// runner's own live set plus the obs counters. The error return is for
// watchdog trips only; inconsistencies land in Violations.
func (r *runner) checkConservation(at float64) error {
	var lives []*core.Solution
	if gerr := r.guard("Lives", at, func() { lives = r.eng.Lives() }); gerr != nil {
		return gerr
	}

	// Live-table membership == the runner's independent view.
	if len(lives) != len(r.live) {
		r.violatef("t=%s live table has %d sessions, runner tracks %d", fmtG(at), len(lives), len(r.live))
	}
	wantLink := make([]float64, r.nw.NumEdges())
	wantSrv := make(map[int]float64)
	for _, sol := range lives {
		if _, ok := r.live[sol.Request.ID]; !ok {
			r.violatef("t=%s live table holds req %d the runner departed", fmtG(at), sol.Request.ID)
		}
		alloc := core.AllocationFor(sol.Request, sol.Tree)
		for e, bw := range alloc.Links {
			wantLink[e] += bw
		}
		for v, mhz := range alloc.Servers {
			wantSrv[v] += mhz
		}
	}

	// cap − free on every resource must equal the live table's sum. The
	// tolerance carries a term in the capacity's own magnitude: cap −
	// free cannot be more precise than cap's ulp.
	tol := func(want, cap float64) float64 {
		return eps*math.Max(1, math.Abs(want)) + 1e-9*math.Abs(cap)
	}
	for e := 0; e < r.nw.NumEdges(); e++ {
		cap := r.nw.BandwidthCap(e)
		got := cap - r.nw.ResidualBandwidth(e)
		if math.Abs(got-wantLink[e]) > tol(wantLink[e], cap) {
			r.violatef("t=%s link %d allocated %g but live table sums to %g", fmtG(at), e, got, wantLink[e])
		}
	}
	for _, v := range r.nw.Servers() {
		cap := r.nw.ComputeCap(v)
		got := cap - r.nw.ResidualCompute(v)
		if math.Abs(got-wantSrv[v]) > tol(wantSrv[v], cap) {
			r.violatef("t=%s server %d allocated %g but live table sums to %g", fmtG(at), v, got, wantSrv[v])
		}
	}

	// Session accounting: counters close admitted − departed − shed =
	// live, and every view agrees on the count.
	adm, dep, shed := r.aobs.AdmittedCount(), r.aobs.DepartedCount(), r.aobs.ShedCount()
	if int(adm)-int(dep)-int(shed) != len(lives) {
		r.violatef("t=%s obs counters admitted=%d departed=%d shed=%d but %d sessions live",
			fmtG(at), adm, dep, shed, len(lives))
	}
	if gauge := int(r.aobs.LiveSessions()); gauge != len(lives) {
		r.violatef("t=%s live gauge %d disagrees with live table %d", fmtG(at), gauge, len(lives))
	}
	var count int
	if gerr := r.guard("LiveCount", at, func() { count = r.eng.LiveCount() }); gerr != nil {
		return gerr
	}
	if count != len(lives) {
		r.violatef("t=%s LiveCount %d disagrees with live table %d", fmtG(at), count, len(lives))
	}
	return nil
}

// checkDrained asserts the end state: with every session departed the
// residual network must be whole again (free == cap everywhere) and
// the flow tables empty.
func (r *runner) checkDrained() {
	if len(r.live) != 0 {
		r.violatef("end: %d sessions still live after horizon drain", len(r.live))
		return
	}
	for e := 0; e < r.nw.NumEdges(); e++ {
		if diff := r.nw.BandwidthCap(e) - r.nw.ResidualBandwidth(e); math.Abs(diff) > eps {
			r.violatef("end: link %d still has %g Mbps allocated after all departures", e, diff)
		}
	}
	for _, v := range r.nw.Servers() {
		if diff := r.nw.ComputeCap(v) - r.nw.ResidualCompute(v); math.Abs(diff) > eps {
			r.violatef("end: server %d still has %g MHz allocated after all departures", v, diff)
		}
	}
	if r.ctrl != nil && r.ctrl.TotalRules() != 0 {
		r.violatef("end: %d flow rules still installed after all departures", r.ctrl.TotalRules())
	}
}
