package scenario

import (
	"sort"
	"testing"
)

// Scenario-harness benchmarks, recorded in results/BENCH_scenario.json.
// They measure the two headline rates of the harness itself: how fast
// a full flash-crowd scenario (admission + departure churn at spike
// load, all invariants checked) drives the engine, and the latency
// distribution of automatic recovery passes under correlated and
// rolling failures.

// BenchmarkScenarioFlashCrowd runs the full flash-crowd scenario per
// iteration and reports end-to-end admission throughput.
func BenchmarkScenarioFlashCrowd(b *testing.B) {
	admitted, arrivals := 0, 0
	for i := 0; i < b.N; i++ {
		cfg, _ := LibraryConfig("flash-crowd")
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("invariant violations during bench: %v", res.Violations[0])
		}
		admitted += res.Admitted
		arrivals += res.Arrivals
	}
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(admitted)/secs, "admits/sec")
	b.ReportMetric(float64(arrivals)/secs, "arrivals/sec")
}

// percentile returns the p-th percentile (0..100) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// BenchmarkScenarioRecovery runs the two failure scenarios per
// iteration and reports recovery-pass latency percentiles across every
// pass observed.
func BenchmarkScenarioRecovery(b *testing.B) {
	var samples []float64
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"regional-failure", "rolling-drain"} {
			cfg, _ := LibraryConfig(name)
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Violations) > 0 {
				b.Fatalf("invariant violations during bench: %v", res.Violations[0])
			}
			samples = append(samples, res.RecoverySeconds...)
		}
	}
	sort.Float64s(samples)
	b.ReportMetric(percentile(samples, 50)*1e6, "recovery_p50_us")
	b.ReportMetric(percentile(samples, 90)*1e6, "recovery_p90_us")
	b.ReportMetric(percentile(samples, 99)*1e6, "recovery_p99_us")
	b.ReportMetric(float64(len(samples))/float64(b.N), "passes/op")
}
