package scenario

import (
	"testing"

	"nfvmcast/internal/core"
)

// TestEveryRegistryPolicyValidates pins the registry wiring: the
// scenario harness accepts exactly the planner registry's names, so a
// policy registered once is immediately usable in a config with no
// harness change.
func TestEveryRegistryPolicyValidates(t *testing.T) {
	for _, spec := range core.Planners() {
		c := base()
		c.Policy = spec.Name
		if err := c.Validate(); err != nil {
			t.Errorf("registry policy %q rejected by scenario validation: %v", spec.Name, err)
		}
	}
}

// TestNewRegistryPoliciesRunEndToEnd drives a short scenario through
// the two planners this registry release adds; the run must finish
// with zero invariant violations (conservation, residual bounds and
// event-stream consistency all hold for split-chain allocations too).
func TestNewRegistryPoliciesRunEndToEnd(t *testing.T) {
	for _, policy := range []string{"Dist_CP", "Reconf_CP"} {
		c := base()
		c.Policy = policy
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s: %d invariant violations: %v", policy, len(res.Violations), res.Violations)
		}
		if res.Admitted == 0 {
			t.Fatalf("%s: scenario admitted nothing", policy)
		}
	}
}
