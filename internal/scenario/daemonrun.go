package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"nfvmcast/internal/daemon"
	"nfvmcast/internal/testutil"
	"nfvmcast/internal/wal"
)

// Daemon mode: the same expanded timeline a scenario runs in-process
// can drive a live nfvmcastd over its HTTP API. The harness stays the
// source of the workload (timeline expansion is a pure function of the
// config, exactly as for in-process runs) while admission, durability
// and recovery happen in the daemon — so one scenario definition
// exercises both the library and the service that wraps it.
//
// Differences from in-process runs, by construction:
//   - resize failure steps are refused (clamping a shrink against live
//     allocations needs residual visibility the wire API does not
//     expose); state-mutation steps fan out fleet-wide via /v1/apply.
//   - rule-budget controllers don't exist here; cfg.MaxRulesPerSwitch
//     must be 0.
//   - the Result fingerprint hashes the harness-side HTTP transcript,
//     and ShardReports carries the daemon's own per-shard fingerprints
//     from /v1/report — two daemon runs of one config agree on both.

// RunDaemon drives cfg's timeline against the daemon at baseURL.
// The daemon must be configured with the same substrate the scenario
// names (topology, seed) — node IDs in the expanded timeline address
// that network.
func RunDaemon(cfg *Config, baseURL string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRulesPerSwitch > 0 {
		return nil, fmt.Errorf("scenario %q: rule budgets are in-process only (daemon has no controller)", cfg.Name)
	}
	nw, err := networkFor(cfg)
	if err != nil {
		return nil, err
	}
	events, err := buildTimeline(cfg, nw)
	if err != nil {
		return nil, err
	}
	for i := range events {
		if events[i].kind == evFailure && events[i].fail.scale != 0 {
			return nil, fmt.Errorf("scenario %q: resize step %q is in-process only (shrink clamping needs residual visibility)",
				cfg.Name, events[i].fail.label)
		}
	}

	d := &daemonRunner{
		cfg:  cfg,
		base: baseURL,
		client: &http.Client{
			Timeout: testutil.Watchdog(),
		},
		res: &Result{
			Name:      cfg.Name,
			Policy:    cfg.Policy,
			Workers:   cfg.Workers,
			Shards:    cfg.Shards,
			PerTenant: make(map[string]*TenantStats),
		},
		live: make(map[int]string),
	}
	for _, t := range cfg.Tenants {
		d.res.PerTenant[t.Name] = &TenantStats{}
	}
	start := time.Now()
	if err := d.drive(events); err != nil {
		return nil, err
	}
	d.res.ElapsedSeconds = time.Since(start).Seconds()
	d.res.FinalLive = len(d.live)
	d.res.transcript = d.tb.String()
	sum := sha256.Sum256([]byte(d.res.transcript))
	d.res.Fingerprint = hex.EncodeToString(sum[:])
	return d.res, nil
}

// daemonRunner drives one expanded timeline over HTTP.
type daemonRunner struct {
	cfg    *Config
	base   string
	client *http.Client
	res    *Result
	live   map[int]string
	tb     bytes.Buffer

	admitted, rejected, departed int
}

func (d *daemonRunner) linef(format string, args ...any) {
	fmt.Fprintf(&d.tb, format+"\n", args...)
}

// post sends one JSON request; 429 backs off briefly (the daemon's
// queue is bounded by design) before giving up.
func (d *daemonRunner) post(path string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := d.client.Post(d.base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, nil, err
		}
		out, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return 0, nil, rerr
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 8 {
			time.Sleep(time.Duration(10<<attempt) * time.Millisecond)
			continue
		}
		return resp.StatusCode, out, nil
	}
}

func (d *daemonRunner) drive(events []event) error {
	for i := range events {
		ev := &events[i]
		var err error
		switch ev.kind {
		case evArrival:
			err = d.arrive(ev)
		case evDeparture:
			err = d.depart(ev.at, ev.reqID)
		case evFailure:
			err = d.failure(ev)
		}
		if err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(d.live))
	for id := range d.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := d.depart(d.cfg.HorizonHours, id); err != nil {
			return err
		}
	}
	// Fold the daemon's own per-shard fingerprints into the result, so
	// the harness view and the daemon view of the run are tied together.
	status, body, err := d.get("/v1/report")
	if err != nil {
		return fmt.Errorf("scenario %q: report: %w", d.cfg.Name, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("scenario %q: report: HTTP %d: %s", d.cfg.Name, status, body)
	}
	var rep daemon.ReportResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("scenario %q: report: %w", d.cfg.Name, err)
	}
	d.res.ShardReports = rep.Report.Shards
	d.linef("daemon merged=%s live=%d", rep.Report.Merged, rep.Report.Live)
	d.linef("end admitted=%d rejected=%d departed=%d live=%d",
		d.admitted, d.rejected, d.departed, len(d.live))
	d.res.Admitted = d.admitted
	d.res.Rejected = d.rejected
	d.res.Departed = d.departed
	return nil
}

func (d *daemonRunner) get(path string) (int, []byte, error) {
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return 0, nil, rerr
	}
	return resp.StatusCode, out, nil
}

func (d *daemonRunner) arrive(ev *event) error {
	tenant := d.cfg.Tenants[ev.tenant].Name
	ts := d.res.PerTenant[tenant]
	ts.Arrivals++
	d.res.Arrivals++
	status, body, err := d.post("/v1/submit", daemon.SubmitRequest{
		Tenant:  tenant,
		Request: wal.EncodeRequest(ev.req),
	})
	if err != nil {
		return fmt.Errorf("scenario %q: submit req %d: %w", d.cfg.Name, ev.req.ID, err)
	}
	switch status {
	case http.StatusOK:
		var sr daemon.SubmitResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return fmt.Errorf("scenario %q: submit req %d: %w", d.cfg.Name, ev.req.ID, err)
		}
		d.live[ev.req.ID] = tenant
		ts.Admitted++
		d.admitted++
		if len(d.live) > d.res.PeakLive {
			d.res.PeakLive = len(d.live)
		}
		d.linef("t=%s admit req=%d tenant=%s shard=%s cost=%s servers=%v",
			fmtG(ev.at), ev.req.ID, tenant, sr.Shard,
			fmtG(sr.Solution.OperationalCost), sr.Solution.Servers)
		return nil
	case http.StatusConflict:
		ts.Rejected++
		d.rejected++
		d.linef("t=%s reject req=%d tenant=%s", fmtG(ev.at), ev.req.ID, tenant)
		return nil
	default:
		return fmt.Errorf("scenario %q: submit req %d: HTTP %d: %s", d.cfg.Name, ev.req.ID, status, body)
	}
}

func (d *daemonRunner) depart(at float64, reqID int) error {
	if _, ok := d.live[reqID]; !ok {
		return nil
	}
	status, body, err := d.post("/v1/release", daemon.ReleaseRequest{ID: reqID})
	if err != nil {
		return fmt.Errorf("scenario %q: release req %d: %w", d.cfg.Name, reqID, err)
	}
	switch status {
	case http.StatusOK:
		delete(d.live, reqID)
		d.departed++
		d.linef("t=%s depart req=%d", fmtG(at), reqID)
		return nil
	case http.StatusNotFound:
		// Shed behind the harness's back by the daemon's recovery
		// ladder; the session is gone either way.
		delete(d.live, reqID)
		d.linef("t=%s depart req=%d (already gone)", fmtG(at), reqID)
		return nil
	default:
		return fmt.Errorf("scenario %q: release req %d: HTTP %d: %s", d.cfg.Name, reqID, status, body)
	}
}

func (d *daemonRunner) failure(ev *event) error {
	status, body, err := d.post("/v1/apply", daemon.ApplyRequest{
		All:       true,
		Mutations: wal.EncodeMutations(ev.fail.muts),
	})
	if err != nil {
		return fmt.Errorf("scenario %q: apply %q: %w", d.cfg.Name, ev.fail.label, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("scenario %q: apply %q: HTTP %d: %s", d.cfg.Name, ev.fail.label, status, body)
	}
	d.linef("t=%s apply %s muts=%d", fmtG(ev.at), ev.fail.label, len(ev.fail.muts))
	return nil
}
