package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nfvmcast/internal/engine"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
)

// Timeline expansion: a validated Config plus the concrete network
// deterministically produce one flat, time-sorted event list before
// the run starts. Expanding everything up front (instead of drawing
// randomness while driving the engine) is what makes a scenario's
// fingerprint a pure function of (config, seed): the engine's worker
// count, wall-clock jitter and invariant-check cadence can never
// perturb the workload.

// eventKind orders simultaneous events: departures free capacity
// before failures strike, failures strike before new arrivals compete
// for what is left.
type eventKind uint8

const (
	evDeparture eventKind = iota
	evFailure
	evArrival
)

// event is one timeline entry.
type event struct {
	at   float64
	kind eventKind
	seq  int // global tie-break, assigned after the time sort

	// arrival
	req    *multicast.Request
	tenant int
	depart float64 // virtual departure instant

	// departure
	reqID int

	// failure
	fail *failureAction
}

// failureAction is one expanded failure-script step: either a typed
// mutation batch (applied atomically through engine.Apply) or a
// capacity resize (clamped against live allocations at execution
// time).
type failureAction struct {
	label string
	muts  []engine.Mutation
	// scale != 0 selects a resize action: every link's capacity
	// becomes scale× its original value (scale < 0 restores the
	// original capacities).
	scale float64
}

// tenantDefaults fills a tenant's zero-valued mix fields with the
// paper's §VI.A workload parameters.
func tenantDefaults(t Tenant) Tenant {
	if t.BandwidthMbps == [2]float64{} {
		t.BandwidthMbps = [2]float64{50, 200}
	}
	if t.ChainLength == [2]int{} {
		t.ChainLength = [2]int{1, 3}
	}
	if t.DestRatio == [2]float64{} {
		t.DestRatio = [2]float64{0.05, 0.2}
	}
	if t.MeanHoldingHours == 0 {
		t.MeanHoldingHours = 1
	}
	return t
}

// expDraw draws an exponential variate with the given mean.
func expDraw(rng *rand.Rand, mean float64) float64 {
	return -mean * math.Log(1-rng.Float64())
}

// phaseRate is λ(t) of a phase.
func phaseRate(p Phase, t float64) float64 {
	if p.Kind != PhaseDiurnal {
		return p.RatePerHour
	}
	period := p.PeriodHours
	if period == 0 {
		period = 24
	}
	return p.RatePerHour * (1 + p.Amplitude*math.Sin(2*math.Pi*t/period))
}

// drawRequest synthesises one request of a tenant class. hot is the
// phase's correlated destination pool (flash phases only, nil
// otherwise); affinity the probability each destination comes from it.
func drawRequest(rng *rand.Rand, n int, t Tenant, hot []graph.NodeID, affinity float64) (*multicast.Request, error) {
	src := rng.Intn(n)
	ratio := t.DestRatio[0] + rng.Float64()*(t.DestRatio[1]-t.DestRatio[0])
	dmax := int(ratio*float64(n) + 0.5)
	if dmax < 1 {
		dmax = 1
	}
	if dmax > n-1 {
		dmax = n - 1
	}
	nd := 1 + rng.Intn(dmax)
	used := map[graph.NodeID]bool{src: true}
	dests := make([]graph.NodeID, 0, nd)
	for len(dests) < nd {
		var d graph.NodeID = -1
		if len(hot) > 0 && rng.Float64() < affinity {
			// Try the hot pool first; a fully-used pool falls through to
			// a uniform draw so the request still fills its set.
			for _, off := range rng.Perm(len(hot)) {
				if !used[hot[off]] {
					d = hot[off]
					break
				}
			}
		}
		if d == -1 {
			d = rng.Intn(n)
			for used[d] {
				d = rng.Intn(n)
			}
		}
		used[d] = true
		dests = append(dests, d)
	}
	sort.Ints(dests)
	bw := t.BandwidthMbps[0] + rng.Float64()*(t.BandwidthMbps[1]-t.BandwidthMbps[0])
	chain, err := nfv.RandomChain(rng, t.ChainLength[0], t.ChainLength[1])
	if err != nil {
		return nil, err
	}
	return &multicast.Request{
		Source:        src,
		Destinations:  dests,
		BandwidthMbps: bw,
		Chain:         chain,
	}, nil
}

// expandArrivals draws every tenant phase's arrival process. Request
// IDs are assigned after the global time sort so they ascend with
// arrival time regardless of tenant interleaving.
func expandArrivals(cfg *Config, n int) ([]event, error) {
	var out []event
	for ti := range cfg.Tenants {
		tn := tenantDefaults(cfg.Tenants[ti])
		for pi, p := range tn.Phases {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*1000003 + int64(pi)*7919))
			var hot []graph.NodeID
			affinity := 0.0
			if p.Kind == PhaseFlash {
				pool := p.HotDestinations
				if pool == 0 {
					pool = 5
				}
				if pool > n {
					pool = n
				}
				hot = append(hot, rng.Perm(n)[:pool]...)
				affinity = p.HotAffinity
				if affinity == 0 {
					affinity = 0.8
				}
			}
			// Thinning against the phase's peak rate; steady and flash
			// phases accept every candidate (λ(t) == λmax).
			maxRate := p.RatePerHour
			if p.Kind == PhaseDiurnal {
				maxRate = p.RatePerHour * (1 + p.Amplitude)
			}
			for t := p.StartHours + expDraw(rng, 1/maxRate); t < p.EndHours; t += expDraw(rng, 1/maxRate) {
				if p.Kind == PhaseDiurnal && rng.Float64() > phaseRate(p, t)/maxRate {
					continue
				}
				req, err := drawRequest(rng, n, tn, hot, affinity)
				if err != nil {
					return nil, err
				}
				out = append(out, event{
					at:     t,
					kind:   evArrival,
					req:    req,
					tenant: ti,
					depart: t + expDraw(rng, tn.MeanHoldingHours),
				})
			}
		}
	}
	return out, nil
}

// regionLinks returns the links within radius hops of the epicenter:
// every edge incident to a node whose hop distance from the epicenter
// is less than radius. Sorted ascending for deterministic batches.
func regionLinks(g *graph.Graph, epicenter graph.NodeID, radius int) []graph.EdgeID {
	dist := map[graph.NodeID]int{epicenter: 0}
	frontier := []graph.NodeID{epicenter}
	for d := 1; d < radius && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, v := range frontier {
			g.VisitNeighbors(v, func(to graph.NodeID, _ graph.EdgeID, _ float64) bool {
				if _, seen := dist[to]; !seen {
					dist[to] = d
					next = append(next, to)
				}
				return true
			})
		}
		frontier = next
	}
	seen := map[graph.EdgeID]bool{}
	var out []graph.EdgeID
	for v := range dist {
		g.VisitNeighbors(v, func(_ graph.NodeID, e graph.EdgeID, _ float64) bool {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
			return true
		})
	}
	sort.Ints(out)
	return out
}

// drainServers resolves a drain step's server list: the explicit list,
// or the Count lowest-ID servers of the network.
func drainServers(f *FailureStep, nw *sdn.Network) []graph.NodeID {
	if len(f.Servers) > 0 {
		return append([]graph.NodeID(nil), f.Servers...)
	}
	servers := nw.Servers()
	if f.Count < len(servers) {
		servers = servers[:f.Count]
	}
	return servers
}

// stateMuts builds an up/down batch over a resource list.
func stateMuts(kind engine.MutationKind, ids []int, up bool) []engine.Mutation {
	muts := make([]engine.Mutation, len(ids))
	for i, id := range ids {
		muts[i] = engine.Mutation{Kind: kind, ID: id, Up: up}
	}
	return muts
}

// expandFailures turns the failure script into timed actions against
// the concrete network, validating resource IDs the config alone could
// not check.
func expandFailures(cfg *Config, nw *sdn.Network) ([]event, error) {
	var out []event
	add := func(at float64, fa *failureAction) {
		out = append(out, event{at: at, kind: evFailure, fail: fa})
	}
	for fi := range cfg.Failures {
		f := &cfg.Failures[fi]
		where := fmt.Sprintf("scenario %q: failure %d", cfg.Name, fi)
		switch f.Kind {
		case FailLink:
			if f.ID >= nw.NumEdges() {
				return nil, fmt.Errorf("%s: link %d out of range (m=%d)", where, f.ID, nw.NumEdges())
			}
			add(f.AtHours, &failureAction{
				label: fmt.Sprintf("link %d down", f.ID),
				muts:  stateMuts(engine.LinkState, []int{f.ID}, false),
			})
			if f.DurationHours > 0 {
				add(f.AtHours+f.DurationHours, &failureAction{
					label: fmt.Sprintf("link %d up", f.ID),
					muts:  stateMuts(engine.LinkState, []int{f.ID}, true),
				})
			}
		case FailServer:
			if !nw.IsServer(f.ID) {
				return nil, fmt.Errorf("%s: node %d has no attached server", where, f.ID)
			}
			add(f.AtHours, &failureAction{
				label: fmt.Sprintf("server %d down", f.ID),
				muts:  stateMuts(engine.ServerState, []int{f.ID}, false),
			})
			if f.DurationHours > 0 {
				add(f.AtHours+f.DurationHours, &failureAction{
					label: fmt.Sprintf("server %d up", f.ID),
					muts:  stateMuts(engine.ServerState, []int{f.ID}, true),
				})
			}
		case FailRegion:
			if f.Epicenter >= nw.NumNodes() {
				return nil, fmt.Errorf("%s: epicenter %d out of range (n=%d)", where, f.Epicenter, nw.NumNodes())
			}
			links := regionLinks(nw.Graph(), f.Epicenter, f.RadiusHops)
			if len(links) == nw.NumEdges() {
				return nil, fmt.Errorf("%s: region around %d radius %d fails every link", where, f.Epicenter, f.RadiusHops)
			}
			add(f.AtHours, &failureAction{
				label: fmt.Sprintf("region around %d down (%d links)", f.Epicenter, len(links)),
				muts:  stateMuts(engine.LinkState, links, false),
			})
			if f.DurationHours > 0 {
				add(f.AtHours+f.DurationHours, &failureAction{
					label: fmt.Sprintf("region around %d up (%d links)", f.Epicenter, len(links)),
					muts:  stateMuts(engine.LinkState, links, true),
				})
			}
		case FailDrain:
			servers := drainServers(f, nw)
			for _, v := range servers {
				if !nw.IsServer(v) {
					return nil, fmt.Errorf("%s: drain node %d has no attached server", where, v)
				}
			}
			for i, v := range servers {
				at := f.AtHours + float64(i)*f.StaggerHours
				if at >= cfg.HorizonHours {
					return nil, fmt.Errorf("%s: drain of server %d at %g spills past horizon %g",
						where, v, at, cfg.HorizonHours)
				}
				add(at, &failureAction{
					label: fmt.Sprintf("drain server %d", v),
					muts:  stateMuts(engine.ServerState, []int{v}, false),
				})
				if f.DurationHours > 0 {
					add(at+f.DurationHours, &failureAction{
						label: fmt.Sprintf("undrain server %d", v),
						muts:  stateMuts(engine.ServerState, []int{v}, true),
					})
				}
			}
		case FailResize:
			add(f.AtHours, &failureAction{
				label: fmt.Sprintf("resize links to %g x original", f.Scale),
				scale: f.Scale,
			})
			if f.DurationHours > 0 {
				add(f.AtHours+f.DurationHours, &failureAction{
					label: "restore original link capacities",
					scale: -1,
				})
			}
		}
	}
	return out, nil
}

// buildTimeline expands the whole scenario into a sorted event list:
// arrivals (with request IDs ascending in arrival order), their
// departures (those inside the horizon), and the failure script.
func buildTimeline(cfg *Config, nw *sdn.Network) ([]event, error) {
	arrivals, err := expandArrivals(cfg, nw.NumNodes())
	if err != nil {
		return nil, err
	}
	// IDs ascend with (time, tenant, draw order): sort arrivals alone
	// first so the departure events can carry their request's ID.
	sort.SliceStable(arrivals, func(i, j int) bool {
		if arrivals[i].at != arrivals[j].at {
			return arrivals[i].at < arrivals[j].at
		}
		return arrivals[i].tenant < arrivals[j].tenant
	})
	events := make([]event, 0, 2*len(arrivals))
	for i := range arrivals {
		arrivals[i].req.ID = i + 1
		events = append(events, arrivals[i])
		if arrivals[i].depart < cfg.HorizonHours {
			events = append(events, event{
				at:    arrivals[i].depart,
				kind:  evDeparture,
				reqID: arrivals[i].req.ID,
			})
		}
	}
	fails, err := expandFailures(cfg, nw)
	if err != nil {
		return nil, err
	}
	events = append(events, fails...)
	for i := range events {
		events[i].seq = i
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		if events[i].kind != events[j].kind {
			return events[i].kind < events[j].kind
		}
		return events[i].seq < events[j].seq
	})
	return events, nil
}
