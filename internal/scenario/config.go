// Package scenario is a declarative black-box simulation harness over
// the admission engine. A scenario is a JSON/struct config composing
// three ingredients:
//
//   - arrival phases per tenant class (steady Poisson load, diurnal
//     sinusoidal load, flash-crowd spikes with correlated destination
//     sets), each class with its own bandwidth/chain/holding-time mix;
//   - a failure script (single link/server failures, correlated
//     regional failures around an epicenter, rolling maintenance
//     drains, capacity right-sizing) applied through the engine's
//     typed, all-or-nothing Apply surface;
//   - invariant checks evaluated continuously while the scenario
//     runs: residual bounds, conservation between the live table and
//     residual capacities, obs event-stream consistency, flow-table
//     budgets, and a no-wedged-writer liveness watchdog.
//
// The runner expands a config into one deterministic virtual-time
// timeline and drives the engine through it sequentially, so a
// scenario's fingerprint is byte-identical at any engine worker count
// — the same property the engine's determinism oracle pins, extended
// to whole workloads. Scenarios beyond the paper's Poisson-only
// evaluation (§VI) are what every later subsystem (sharding, daemon
// recovery, new planners) will be regression-tested against.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"nfvmcast/internal/core"
)

// Config is one declarative scenario.
type Config struct {
	// Name identifies the scenario in results and fingerprints.
	Name string `json:"name"`
	// Topology names the substrate: geant, as1755, as4755, waxman or
	// fattree (waxman takes Size nodes; the others fix their size).
	Topology TopologySpec `json:"topology"`
	// Policy is the admission algorithm, resolved by name from the
	// planner registry (core.Planners): Online_CP, SP, SP_Static,
	// Online_CPK, Appro_Multi_Cap, Dist_CP, Reconf_CP.
	Policy string `json:"policy"`
	// Workers is the engine's planning concurrency (0/1 sequential).
	// Decisions are identical at any value because the runner drives
	// arrivals sequentially; the knob exists so scenario suites can
	// exercise the snapshot plan/commit machinery.
	Workers int `json:"workers,omitempty"`
	// Shards splits the run across a shard router: each shard owns an
	// identical replica of the scenario substrate and its own engine,
	// and tenants spread across shards by rendezvous hash. 0 or 1
	// selects the single-engine path unchanged (byte-identical
	// results). Sharded runs cannot attach a rule-limited controller —
	// flow tables belong to one network.
	Shards int `json:"shards,omitempty"`
	// BatchWindow is each engine's commit-epoch window (see
	// engine.Options.BatchWindow); 0 commits every decision in its own
	// epoch. Decisions are window-invariant; the knob exists so
	// scenario suites can exercise epoch-batched commits.
	BatchWindow int `json:"batchWindow,omitempty"`
	// Seed drives every random draw of the scenario (workload
	// contents, arrival processes, hot destination sets).
	Seed int64 `json:"seed"`
	// HorizonHours bounds virtual time: arrivals stop at the horizon
	// (phases must fit inside it); sessions departing later are
	// departed at the end of the run.
	HorizonHours float64 `json:"horizonHours"`
	// Tenants are the workload classes; at least one is required.
	Tenants []Tenant `json:"tenants"`
	// Failures is the failure script, optional.
	Failures []FailureStep `json:"failures,omitempty"`
	// Recovery selects the engine's self-healing policy: "default"
	// (γ=1.5 repair-first), "replan" (γ=0 baseline), or "off". Empty
	// means "default" when the scenario has failure steps and "off"
	// otherwise.
	Recovery string `json:"recovery,omitempty"`
	// MaxRulesPerSwitch, when positive, attaches a rule-capacity-
	// limited SDN controller: every admitted tree is compiled into
	// per-switch forwarding rules, and a tree that overflows a flow
	// table is departed immediately and counted as a rule-capacity
	// rejection.
	MaxRulesPerSwitch int `json:"maxRulesPerSwitch,omitempty"`
	// CheckEveryEvents is the cadence of the expensive conservation
	// invariant (cheap bounds checks run every event). 0 selects the
	// default of 32.
	CheckEveryEvents int `json:"checkEveryEvents,omitempty"`
}

// TopologySpec selects the substrate.
type TopologySpec struct {
	Name string `json:"name"`
	// Size is the node count for the waxman topology (ignored by the
	// fixed topologies).
	Size int `json:"size,omitempty"`
}

// Tenant is one workload class: its arrival phases plus the request
// mix the class draws from.
type Tenant struct {
	// Name labels the class in results.
	Name string `json:"name"`
	// Phases are the class's arrival phases; at least one.
	Phases []Phase `json:"phases"`
	// BandwidthMbps is the uniform b_k range; zero selects the
	// paper's [50, 200].
	BandwidthMbps [2]float64 `json:"bandwidthMbps,omitempty"`
	// ChainLength is the inclusive service-chain length range; zero
	// selects the paper's [1, 3].
	ChainLength [2]int `json:"chainLength,omitempty"`
	// DestRatio is the per-request destination-ratio range; zero
	// selects the paper's online default [0.05, 0.2].
	DestRatio [2]float64 `json:"destRatio,omitempty"`
	// MeanHoldingHours is the exponential session-duration mean;
	// zero selects 1.0.
	MeanHoldingHours float64 `json:"meanHoldingHours,omitempty"`
}

// Phase kinds.
const (
	// PhaseSteady is a homogeneous Poisson arrival process at
	// RatePerHour over [StartHours, EndHours).
	PhaseSteady = "steady"
	// PhaseFlash is a flash crowd: Poisson arrivals at RatePerHour
	// whose destinations are drawn from a small hot set (the
	// correlated audience of a live event) with probability
	// HotAffinity.
	PhaseFlash = "flash"
	// PhaseDiurnal is a non-homogeneous Poisson process with rate
	// RatePerHour·(1 + Amplitude·sin(2πt/PeriodHours)), generated by
	// thinning.
	PhaseDiurnal = "diurnal"
)

// Phase is one arrival phase of a tenant.
type Phase struct {
	// Kind is steady, flash or diurnal.
	Kind string `json:"kind"`
	// StartHours and EndHours bound the phase, 0 <= start < end.
	StartHours float64 `json:"startHours"`
	EndHours   float64 `json:"endHours"`
	// RatePerHour is the (base) Poisson arrival rate λ.
	RatePerHour float64 `json:"ratePerHour"`
	// HotDestinations sizes the flash phase's correlated destination
	// pool (default 5).
	HotDestinations int `json:"hotDestinations,omitempty"`
	// HotAffinity is the probability a flash request's destination is
	// drawn from the hot pool rather than uniformly (default 0.8).
	HotAffinity float64 `json:"hotAffinity,omitempty"`
	// Amplitude is the diurnal modulation depth in [0, 1].
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodHours is the diurnal period (default 24).
	PeriodHours float64 `json:"periodHours,omitempty"`
}

// Failure-step kinds.
const (
	// FailLink fails link ID at AtHours, restoring after
	// DurationHours (0 = permanent).
	FailLink = "link"
	// FailServer fails the server at node ID, restoring after
	// DurationHours.
	FailServer = "server"
	// FailRegion fails, atomically in one batch, every link within
	// RadiusHops of node Epicenter — a correlated regional outage —
	// restoring the batch after DurationHours.
	FailRegion = "region"
	// FailDrain rolls a maintenance drain over Servers: server i
	// fails at AtHours + i·StaggerHours and restores DurationHours
	// later, so the drain exercises the recovery ladder repeatedly
	// while earlier servers are already back.
	FailDrain = "drain"
	// FailResize right-sizes every link's bandwidth capacity to
	// Scale× its original value at AtHours (clamped so live
	// allocations are never cut), restoring original capacities after
	// DurationHours (0 = permanent).
	FailResize = "resize"
)

// FailureStep is one entry of the failure script.
type FailureStep struct {
	// Kind is link, server, region, drain or resize.
	Kind string `json:"kind"`
	// AtHours is when the step strikes.
	AtHours float64 `json:"atHours"`
	// DurationHours is how long the failure lasts; 0 means no
	// restore.
	DurationHours float64 `json:"durationHours,omitempty"`
	// ID is the failed link (kind link) or server node (kind server).
	ID int `json:"id,omitempty"`
	// Epicenter and RadiusHops shape a regional failure.
	Epicenter  int `json:"epicenter,omitempty"`
	RadiusHops int `json:"radiusHops,omitempty"`
	// Servers is the rolling-drain order; StaggerHours the spacing.
	// Server placement is drawn from the scenario seed, so configs that
	// should stay topology-portable can set Count instead: the drain
	// then rolls over the Count lowest-numbered server nodes.
	Servers      []int   `json:"servers,omitempty"`
	Count        int     `json:"count,omitempty"`
	StaggerHours float64 `json:"staggerHours,omitempty"`
	// Scale is the resize factor (e.g. 0.5 halves every link).
	Scale float64 `json:"scale,omitempty"`
}

// topologies the harness accepts.
var knownTopologies = map[string]bool{
	"geant": true, "as1755": true, "as4755": true, "waxman": true, "fattree": true,
}

// knownPolicy reports whether the admission policy resolves in the
// planner registry (core.Planners lists the accepted names).
func knownPolicy(name string) bool {
	_, ok := core.LookupPlanner(name)
	return ok
}

// recovery modes the harness accepts.
var knownRecovery = map[string]bool{
	"": true, "default": true, "replan": true, "off": true,
}

func positiveFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0
}

// Validate checks the whole config and returns the first problem
// found, in a deterministic order (config, tenants by index, phases by
// index, failure steps by index, then cross-step overlap checks). The
// error strings are part of the harness's contract: the validation
// tests pin them as goldens.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: config needs a name")
	}
	if !knownTopologies[c.Topology.Name] {
		return fmt.Errorf("scenario %q: unknown topology %q", c.Name, c.Topology.Name)
	}
	if c.Topology.Name == "waxman" && c.Topology.Size < 10 {
		return fmt.Errorf("scenario %q: waxman topology needs size >= 10, got %d", c.Name, c.Topology.Size)
	}
	if !knownPolicy(c.Policy) {
		return fmt.Errorf("scenario %q: unknown policy %q", c.Name, c.Policy)
	}
	if !positiveFinite(c.HorizonHours) {
		return fmt.Errorf("scenario %q: horizonHours %v must be positive", c.Name, c.HorizonHours)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("scenario %q: needs at least one tenant", c.Name)
	}
	if !knownRecovery[c.Recovery] {
		return fmt.Errorf("scenario %q: unknown recovery mode %q", c.Name, c.Recovery)
	}
	if c.MaxRulesPerSwitch < 0 {
		return fmt.Errorf("scenario %q: maxRulesPerSwitch %d must be >= 0", c.Name, c.MaxRulesPerSwitch)
	}
	if c.CheckEveryEvents < 0 {
		return fmt.Errorf("scenario %q: checkEveryEvents %d must be >= 0", c.Name, c.CheckEveryEvents)
	}
	if c.Shards < 0 {
		return fmt.Errorf("scenario %q: shards %d must be >= 0", c.Name, c.Shards)
	}
	if c.Shards > 1 && c.MaxRulesPerSwitch > 0 {
		return fmt.Errorf("scenario %q: sharded runs cannot attach a rule-limited controller (shards=%d, maxRulesPerSwitch=%d)",
			c.Name, c.Shards, c.MaxRulesPerSwitch)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("scenario %q: batchWindow %d must be >= 0", c.Name, c.BatchWindow)
	}
	for ti := range c.Tenants {
		if err := c.validateTenant(ti); err != nil {
			return err
		}
	}
	for fi := range c.Failures {
		if err := c.validateFailure(fi); err != nil {
			return err
		}
	}
	return c.validateFailureOverlaps()
}

func (c *Config) validateTenant(ti int) error {
	t := &c.Tenants[ti]
	if t.Name == "" {
		return fmt.Errorf("scenario %q: tenant %d needs a name", c.Name, ti)
	}
	for tj := 0; tj < ti; tj++ {
		if c.Tenants[tj].Name == t.Name {
			return fmt.Errorf("scenario %q: duplicate tenant name %q", c.Name, t.Name)
		}
	}
	if len(t.Phases) == 0 {
		return fmt.Errorf("scenario %q: tenant %q needs at least one phase", c.Name, t.Name)
	}
	if bw := t.BandwidthMbps; bw != [2]float64{} && (!positiveFinite(bw[0]) || bw[1] < bw[0]) {
		return fmt.Errorf("scenario %q: tenant %q: invalid bandwidth range %v", c.Name, t.Name, bw)
	}
	if cl := t.ChainLength; cl != [2]int{} && (cl[0] < 1 || cl[1] < cl[0]) {
		return fmt.Errorf("scenario %q: tenant %q: invalid chain length range %v", c.Name, t.Name, cl)
	}
	if dr := t.DestRatio; dr != [2]float64{} &&
		(!positiveFinite(dr[0]) || dr[1] < dr[0] || dr[1] > 1) {
		return fmt.Errorf("scenario %q: tenant %q: invalid destination ratio range %v", c.Name, t.Name, dr)
	}
	if t.MeanHoldingHours < 0 || math.IsNaN(t.MeanHoldingHours) || math.IsInf(t.MeanHoldingHours, 0) {
		return fmt.Errorf("scenario %q: tenant %q: invalid mean holding time %v", c.Name, t.Name, t.MeanHoldingHours)
	}
	for pi, p := range t.Phases {
		where := fmt.Sprintf("scenario %q: tenant %q: phase %d", c.Name, t.Name, pi)
		switch p.Kind {
		case PhaseSteady, PhaseFlash, PhaseDiurnal:
		default:
			return fmt.Errorf("%s: unknown kind %q", where, p.Kind)
		}
		if p.StartHours < 0 || p.EndHours <= p.StartHours {
			return fmt.Errorf("%s: bounds [%v, %v) are not an interval", where, p.StartHours, p.EndHours)
		}
		if p.EndHours > c.HorizonHours {
			return fmt.Errorf("%s: endHours %v exceeds horizon %v", where, p.EndHours, c.HorizonHours)
		}
		if !positiveFinite(p.RatePerHour) {
			return fmt.Errorf("%s: ratePerHour %v must be positive", where, p.RatePerHour)
		}
		if p.Kind == PhaseFlash {
			if p.HotDestinations < 0 {
				return fmt.Errorf("%s: hotDestinations %d must be >= 0", where, p.HotDestinations)
			}
			if p.HotAffinity < 0 || p.HotAffinity > 1 {
				return fmt.Errorf("%s: hotAffinity %v outside [0, 1]", where, p.HotAffinity)
			}
		}
		if p.Kind == PhaseDiurnal {
			if p.Amplitude < 0 || p.Amplitude > 1 {
				return fmt.Errorf("%s: amplitude %v outside [0, 1]", where, p.Amplitude)
			}
			if p.PeriodHours < 0 {
				return fmt.Errorf("%s: periodHours %v must be >= 0", where, p.PeriodHours)
			}
		}
	}
	return nil
}

func (c *Config) validateFailure(fi int) error {
	f := &c.Failures[fi]
	where := fmt.Sprintf("scenario %q: failure %d", c.Name, fi)
	if f.AtHours < 0 || f.AtHours >= c.HorizonHours {
		return fmt.Errorf("%s: atHours %v outside [0, %v)", where, f.AtHours, c.HorizonHours)
	}
	if f.DurationHours < 0 {
		return fmt.Errorf("%s: durationHours %v must be >= 0", where, f.DurationHours)
	}
	switch f.Kind {
	case FailLink, FailServer:
		if f.ID < 0 {
			return fmt.Errorf("%s: id %d must be >= 0", where, f.ID)
		}
	case FailRegion:
		if f.Epicenter < 0 {
			return fmt.Errorf("%s: epicenter %d must be >= 0", where, f.Epicenter)
		}
		if f.RadiusHops < 1 {
			return fmt.Errorf("%s: radiusHops %d must be >= 1", where, f.RadiusHops)
		}
	case FailDrain:
		if len(f.Servers) == 0 && f.Count < 1 {
			return fmt.Errorf("%s: drain needs servers or a positive count", where)
		}
		for _, v := range f.Servers {
			if v < 0 {
				return fmt.Errorf("%s: drain server %d must be >= 0", where, v)
			}
		}
		if f.StaggerHours < 0 {
			return fmt.Errorf("%s: staggerHours %v must be >= 0", where, f.StaggerHours)
		}
	case FailResize:
		if !positiveFinite(f.Scale) {
			return fmt.Errorf("%s: scale %v must be positive", where, f.Scale)
		}
	default:
		return fmt.Errorf("%s: unknown kind %q", where, f.Kind)
	}
	return nil
}

// failureWindow is one resource's outage interval, for overlap checks.
type failureWindow struct {
	step     int
	kind     string // "link" or "server"
	id       int
	from, to float64 // to = +Inf when permanent
}

// windows expands a step into per-resource outage windows. Region
// steps cannot be expanded without the topology, so they contribute a
// single synthetic window keyed on the epicenter; overlapping regional
// scripts are rare enough that the coarse check is the useful one.
func (f *FailureStep) windows(step int) []failureWindow {
	to := math.Inf(1)
	if f.DurationHours > 0 {
		to = f.AtHours + f.DurationHours
	}
	switch f.Kind {
	case FailLink:
		return []failureWindow{{step, "link", f.ID, f.AtHours, to}}
	case FailServer:
		return []failureWindow{{step, "server", f.ID, f.AtHours, to}}
	case FailRegion:
		return []failureWindow{{step, "region", f.Epicenter, f.AtHours, to}}
	case FailDrain:
		var out []failureWindow
		servers := f.Servers
		if len(servers) == 0 {
			// Count-based drains resolve to concrete servers only at run
			// time; synthetic negative IDs still catch two count-drains
			// rolling over the same (ordered) server set.
			for i := 0; i < f.Count; i++ {
				servers = append(servers, -1-i)
			}
		}
		for i, v := range servers {
			at := f.AtHours + float64(i)*f.StaggerHours
			wto := math.Inf(1)
			if f.DurationHours > 0 {
				wto = at + f.DurationHours
			}
			out = append(out, failureWindow{step, "server", v, at, wto})
		}
		return out
	default: // resize windows never conflict: the last write wins by design
		return nil
	}
}

// validateFailureOverlaps rejects scripts in which two windows fail
// the same resource at overlapping times — the double-down would make
// the later restore resurrect a link the earlier window still holds
// down, silently corrupting the script's intent.
func (c *Config) validateFailureOverlaps() error {
	var all []failureWindow
	for fi := range c.Failures {
		all = append(all, c.Failures[fi].windows(fi)...)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.kind != b.kind || a.id != b.id || a.step == b.step {
				continue
			}
			if a.from < b.to && b.from < a.to {
				return fmt.Errorf(
					"scenario %q: failures %d and %d overlap on %s %d ([%g, %g) vs [%g, %g))",
					c.Name, a.step, b.step, a.kind, a.id, a.from, a.to, b.from, b.to)
			}
		}
	}
	return nil
}

// Parse decodes and validates a JSON scenario config. Unknown fields
// are rejected so schema typos fail loudly instead of silently
// changing the scenario.
func Parse(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("scenario: decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Load reads and validates a JSON scenario config from a file.
func Load(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Parse(f)
}
