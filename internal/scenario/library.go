package scenario

// The shipped scenario library: six workloads that together exercise
// every axis the harness knows — correlated flash-crowd demand,
// diurnal load with capacity right-sizing, a correlated regional
// outage, a rolling maintenance drain over the recovery ladder,
// multi-class tenants, and rule-capacity-limited switches. They run as
// table-driven tests (scenario_test.go) and are addressable from the
// CLI (nfvsim -scenario name:<name>).

// Library returns fresh copies of the shipped scenarios, in a fixed
// order. Callers may mutate the returned configs freely.
func Library() []*Config {
	return []*Config{
		flashCrowd(),
		diurnalRightsize(),
		regionalFailure(),
		rollingDrain(),
		multiTenant(),
		ruleLimited(),
		shardedTenants(),
	}
}

// LibraryConfig returns the shipped scenario with the given name.
func LibraryConfig(name string) (*Config, bool) {
	for _, cfg := range Library() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return nil, false
}

// flashCrowd overlays a live-event audience — a burst of requests
// whose destination sets share a small hot pool — on steady background
// load, and expects the engine to start rejecting at the peak without
// ever bending a residual bound.
func flashCrowd() *Config {
	return &Config{
		Name:         "flash-crowd",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         11,
		HorizonHours: 4,
		Tenants: []Tenant{
			{
				Name:   "background",
				Phases: []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 4, RatePerHour: 25}},
			},
			{
				Name: "event",
				Phases: []Phase{{
					Kind: PhaseFlash, StartHours: 1.5, EndHours: 2.5, RatePerHour: 300,
					HotDestinations: 4, HotAffinity: 0.9,
				}},
				BandwidthMbps:    [2]float64{150, 400},
				MeanHoldingHours: 1,
			},
		},
	}
}

// diurnalRightsize runs a day-curve workload and right-sizes link
// capacities down during the trough, checking that resizes are
// residual-only events (no recovery pass) and never cut a live
// allocation.
func diurnalRightsize() *Config {
	return &Config{
		Name:         "diurnal-rightsize",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         12,
		HorizonHours: 6,
		Recovery:     "off",
		Tenants: []Tenant{{
			Name: "daily",
			Phases: []Phase{{
				Kind: PhaseDiurnal, StartHours: 0, EndHours: 6,
				RatePerHour: 60, Amplitude: 0.8, PeriodHours: 6,
			}},
			MeanHoldingHours: 0.75,
		}},
		Failures: []FailureStep{{
			Kind: FailResize, AtHours: 2.25, DurationHours: 2, Scale: 0.4,
		}},
	}
}

// regionalFailure takes down every link around one epicenter in a
// single atomic batch — a correlated regional outage — and expects one
// recovery pass to repair or shed every affected session.
func regionalFailure() *Config {
	return &Config{
		Name:         "regional-failure",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         13,
		HorizonHours: 3,
		Recovery:     "default",
		Tenants: []Tenant{{
			Name:             "steady",
			Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 60}},
			MeanHoldingHours: 2,
		}},
		Failures: []FailureStep{{
			// Frankfurt (node 10), the highest-degree GÉANT PoP.
			Kind: FailRegion, Epicenter: 10, RadiusHops: 1, AtHours: 1.5, DurationHours: 1,
		}},
	}
}

// rollingDrain staggers maintenance drains across servers so the
// recovery ladder runs repeatedly while earlier servers are already
// back — the steady-state churn of a real maintenance window.
func rollingDrain() *Config {
	return &Config{
		Name:         "rolling-drain",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         14,
		HorizonHours: 4,
		Recovery:     "default",
		Tenants: []Tenant{{
			Name:             "steady",
			Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 4, RatePerHour: 50}},
			MeanHoldingHours: 2,
		}},
		Failures: []FailureStep{{
			Kind: FailDrain, Count: 3, AtHours: 1, StaggerHours: 0.75, DurationHours: 0.5,
		}},
	}
}

// multiTenant mixes a heavy gold class against a chatty bronze class
// and checks both make progress while every conservation invariant
// holds across the interleaving.
func multiTenant() *Config {
	return &Config{
		Name:         "multi-tenant",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         15,
		HorizonHours: 3,
		Tenants: []Tenant{
			{
				Name:             "gold",
				Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 30}},
				BandwidthMbps:    [2]float64{150, 300},
				ChainLength:      [2]int{2, 3},
				MeanHoldingHours: 1.2,
			},
			{
				Name:             "bronze",
				Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 90}},
				BandwidthMbps:    [2]float64{30, 80},
				ChainLength:      [2]int{1, 1},
				DestRatio:        [2]float64{0.02, 0.1},
				MeanHoldingHours: 0.4,
			},
		},
	}
}

// shardedTenants spreads six tenant classes across a four-shard router
// (each shard an identical GÉANT replica with its own engine, commits
// epoch-batched), then takes down the links around Frankfurt fleet-wide
// — every shard applies the outage batch and runs its own recovery
// pass. The harness's per-shard and cross-shard conservation checks do
// the heavy lifting; the scenario exists so they run on every suite.
func shardedTenants() *Config {
	tenants := make([]Tenant, 6)
	for i := range tenants {
		tenants[i] = Tenant{
			Name:             string(rune('a' + i)),
			Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 25}},
			MeanHoldingHours: 1.5,
		}
	}
	return &Config{
		Name:         "sharded-tenants",
		Topology:     TopologySpec{Name: "geant"},
		Policy:       "Online_CP",
		Seed:         17,
		HorizonHours: 3,
		Shards:       4,
		BatchWindow:  16,
		Recovery:     "default",
		Tenants:      tenants,
		Failures: []FailureStep{{
			// Frankfurt (node 10) again, but fleet-wide: the same batch
			// strikes every shard's replica.
			Kind: FailRegion, Epicenter: 10, RadiusHops: 1, AtHours: 1.5, DurationHours: 1,
		}},
	}
}

// ruleLimited attaches a rule-capacity-limited controller: admissions
// that fit the residual network but overflow a switch's flow table
// must bounce cleanly (admit, fail install, depart) and leave the
// tables consistent.
func ruleLimited() *Config {
	return &Config{
		Name:              "rule-limited",
		Topology:          TopologySpec{Name: "geant"},
		Policy:            "Online_CP",
		Seed:              16,
		HorizonHours:      3,
		MaxRulesPerSwitch: 24,
		Tenants: []Tenant{{
			Name:             "steady",
			Phases:           []Phase{{Kind: PhaseSteady, StartHours: 0, EndHours: 3, RatePerHour: 60}},
			MeanHoldingHours: 1.5,
		}},
	}
}
