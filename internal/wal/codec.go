package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment framing. Each record is stored as
//
//	[4B little-endian payload length][4B little-endian CRC32 (IEEE) of
//	the payload][JSON payload]
//
// A reader that hits bytes violating this framing classifies them:
// a frame that does not fit in the remaining bytes is a truncation
// (ErrLogTruncated — the torn tail of a crashed write), a complete
// frame whose checksum or JSON does not hold is a corruption
// (ErrLogCorrupt — bit rot or tampering). Recovery tolerates either at
// the very tail of the newest segment (the log is cut back to the last
// valid record); anywhere else it refuses, because skipping a record
// would silently diverge the replayed state.

// Typed failure classes of log reading. Both are wrapped with position
// detail; match with errors.Is.
var (
	// ErrLogCorrupt marks a complete frame whose checksum or payload
	// does not verify, or a record sequence violation (an LSN gap).
	ErrLogCorrupt = errors.New("wal: log corrupt")
	// ErrLogTruncated marks a frame cut short by the end of the
	// segment — a torn write from a crash mid-append.
	ErrLogTruncated = errors.New("wal: log truncated mid-record")
)

// frameHeaderSize is the per-record framing overhead.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record's payload. Real records are a
// few KiB; the bound keeps a corrupt length field from driving a
// multi-gigabyte allocation during replay.
const maxRecordBytes = 64 << 20

// appendFrame appends rec's framed encoding to buf and returns it.
func appendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("wal: encode record lsn=%d: %w", rec.LSN, err)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return buf, nil
}

// readFrame decodes the record starting at data[off]. It returns the
// record and the offset just past it. Errors are classified:
// ErrLogTruncated when the frame runs past len(data), ErrLogCorrupt
// when a complete frame fails its checksum or does not decode.
func readFrame(data []byte, off int) (*Record, int, error) {
	if len(data)-off < frameHeaderSize {
		return nil, off, fmt.Errorf("%w: %d byte partial header at offset %d",
			ErrLogTruncated, len(data)-off, off)
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxRecordBytes {
		// A length this large is a scribbled header, not a torn write.
		return nil, off, fmt.Errorf("%w: implausible record length %d at offset %d",
			ErrLogCorrupt, n, off)
	}
	body := off + frameHeaderSize
	if len(data)-body < n {
		return nil, off, fmt.Errorf("%w: record of %d bytes cut to %d at offset %d",
			ErrLogTruncated, n, len(data)-body, off)
	}
	payload := data[body : body+n]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, off, fmt.Errorf("%w: checksum mismatch at offset %d (stored %08x, computed %08x)",
			ErrLogCorrupt, off, sum, got)
	}
	rec := new(Record)
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, off, fmt.Errorf("%w: undecodable payload at offset %d: %v",
			ErrLogCorrupt, off, err)
	}
	if err := rec.validate(); err != nil {
		return nil, off, fmt.Errorf("%w: offset %d: %v", ErrLogCorrupt, off, err)
	}
	return rec, body + n, nil
}
