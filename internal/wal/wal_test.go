package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// Test substrate: identically-seeded networks, so every rebuild of the
// "base topology" is byte-identical to the one the logged run started
// from — the same contract the daemon's boot recovery relies on.

func testNetwork(tb testing.TB, topoName string, seed int64) *sdn.Network {
	tb.Helper()
	var (
		topo *topology.Topology
		err  error
	)
	switch topoName {
	case "geant":
		topo = topology.GEANT()
	case "waxman":
		topo, err = topology.WaxmanDegree(50, topology.DefaultAvgDegree, 0.14, seed)
		if err != nil {
			tb.Fatal(err)
		}
	default:
		tb.Fatalf("unknown topology %q", topoName)
	}
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// testEngine builds a journaled engine on the seeded base topology,
// with the recovery ladder on so the workload produces repaired/shed
// records too.
func testEngine(tb testing.TB, topoName string, seed int64, workers int, j engine.Journal) *engine.Engine {
	tb.Helper()
	nw := testNetwork(tb, topoName, seed)
	opts := []engine.Option{
		engine.WithWorkers(workers),
		engine.WithRecovery(recov.DefaultPolicy()),
	}
	if j != nil {
		opts = append(opts, engine.WithJournal(j))
	}
	return engine.NewWith(nw, core.NewSPPlanner(), opts...)
}

// checkpoint is the oracle's ground truth after one acked operation:
// the log position, the state fingerprint the engine reported at that
// moment, and a copy of the log directory exactly as it was on disk.
// The copy is taken BEFORE any snapshot the cadence triggers, so it is
// a faithful image of the disk a crash at that instant leaves behind
// (snapshots from earlier checkpoints are in it; the one covering this
// LSN is not yet).
type checkpoint struct {
	lsn uint64
	fp  string
	dir string
}

// driveOps runs a deterministic mixed workload — admissions,
// departures, link failure (the recovery ladder sheds/repairs inline),
// link repair, capacity growth, periodic snapshots — serially against
// eng, checkpointing after every effective operation. Serial driving
// keeps every checkpoint well-defined at any worker count. idBase
// offsets generated request IDs so a continuation run after recovery
// cannot collide with sessions already live.
func driveOps(tb testing.TB, eng *engine.Engine, l *Log, copyRoot, topoName string, nOps int, seed int64, idBase int) []checkpoint {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := testNetwork(tb, topoName, seed) // read-only probe for sizes
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), seed+1)
	if err != nil {
		tb.Fatal(err)
	}
	servers := base.Servers()
	// Capacities only ever grow (tracked here), so a resize can never
	// dip below the allocated share and fail validation.
	linkCap := make([]float64, base.NumEdges())
	for e := range linkCap {
		linkCap[e] = base.BandwidthCap(e)
	}
	srvCap := make(map[int]float64, len(servers))
	for _, v := range servers {
		srvCap[v] = base.ComputeCap(v)
	}
	var downLinks []int

	var cps []checkpoint
	for i := 0; i < nOps; i++ {
		switch p := rng.Intn(100); {
		case p < 55: // admit
			req, gerr := gen.Next()
			if gerr != nil {
				tb.Fatal(gerr)
			}
			req.ID += idBase
			if _, aerr := eng.Admit(req); aerr != nil && !core.IsRejection(aerr) {
				tb.Fatalf("op %d: admit: %v", i, aerr)
			}
		case p < 75: // depart a live session
			lives := eng.Lives()
			if len(lives) == 0 {
				continue
			}
			id := lives[rng.Intn(len(lives))].Request.ID
			if _, derr := eng.Depart(id); derr != nil {
				tb.Fatalf("op %d: depart %d: %v", i, id, derr)
			}
		case p < 85: // fail a link (recovery ladder runs inline)
			e := rng.Intn(base.NumEdges())
			if aerr := eng.Apply(engine.Mutation{Kind: engine.LinkState, ID: e, Up: false}); aerr != nil {
				tb.Fatalf("op %d: fail link %d: %v", i, e, aerr)
			}
			downLinks = append(downLinks, e)
		case p < 92: // repair a failed link
			if len(downLinks) == 0 {
				continue
			}
			k := rng.Intn(len(downLinks))
			e := downLinks[k]
			downLinks = append(downLinks[:k], downLinks[k+1:]...)
			if aerr := eng.Apply(engine.Mutation{Kind: engine.LinkState, ID: e, Up: true}); aerr != nil {
				tb.Fatalf("op %d: repair link %d: %v", i, e, aerr)
			}
		default: // grow a capacity
			if rng.Intn(2) == 0 {
				e := rng.Intn(base.NumEdges())
				linkCap[e] *= 1.1 + rng.Float64()*0.4
				if aerr := eng.Apply(engine.Mutation{Kind: engine.LinkCapacity, ID: e, Capacity: linkCap[e]}); aerr != nil {
					tb.Fatalf("op %d: resize link %d: %v", i, e, aerr)
				}
			} else {
				v := servers[rng.Intn(len(servers))]
				srvCap[v] *= 1.1 + rng.Float64()*0.4
				if aerr := eng.Apply(engine.Mutation{Kind: engine.ServerCapacity, ID: v, Capacity: srvCap[v]}); aerr != nil {
					tb.Fatalf("op %d: resize server %d: %v", i, v, aerr)
				}
			}
		}
		fp, ferr := Fingerprint(eng)
		if ferr != nil {
			tb.Fatalf("op %d: fingerprint: %v", i, ferr)
		}
		cp := checkpoint{lsn: l.LastLSN(), fp: fp}
		if copyRoot != "" {
			cp.dir = filepath.Join(copyRoot, fmt.Sprintf("cp-%04d", len(cps)))
			copyDir(tb, l.Dir(), cp.dir)
		}
		cps = append(cps, cp)
		if l.ShouldSnapshot() {
			if _, serr := l.Snapshot(eng); serr != nil {
				tb.Fatalf("op %d: snapshot: %v", i, serr)
			}
		}
	}
	return cps
}

// copyDir snapshots a log directory byte-for-byte (serial driving
// guarantees no append is in flight).
func copyDir(tb testing.TB, src, dst string) {
	tb.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		tb.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		data, rerr := os.ReadFile(filepath.Join(src, e.Name()))
		if rerr != nil {
			tb.Fatal(rerr)
		}
		if werr := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); werr != nil {
			tb.Fatal(werr)
		}
	}
}

// recoverDir opens dir and replays it into a fresh engine on the same
// seeded base topology, returning the recovered engine, its log and
// the replay stats.
func recoverDir(tb testing.TB, dir, topoName string, seed int64, workers int) (*engine.Engine, *Log, *ReplayStats) {
	tb.Helper()
	l, err := Open(dir, Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		tb.Fatalf("reopen %s: %v", dir, err)
	}
	eng := testEngine(tb, topoName, seed, workers, l.Journal())
	stats, err := l.Recover(eng)
	if err != nil {
		eng.Close()
		tb.Fatalf("recover %s: %v", dir, err)
	}
	return eng, l, stats
}

// boundary is one record's position in a segment file.
type boundary struct {
	lsn uint64
	end int // byte offset just past the record's frame
}

// boundaries lists every record boundary in one segment.
func boundaries(tb testing.TB, segPath string) []boundary {
	tb.Helper()
	data, err := os.ReadFile(segPath)
	if err != nil {
		tb.Fatal(err)
	}
	var out []boundary
	off := 0
	for off < len(data) {
		rec, next, rerr := readFrame(data, off)
		if rerr != nil {
			break
		}
		out = append(out, boundary{lsn: rec.LSN, end: next})
		off = next
	}
	return out
}

// killAt builds the disk image a crash at record boundary b leaves:
// the checkpoint copy with every segment after seg removed (they did
// not exist yet) and seg cut at the boundary (plus extraBytes of the
// following record for torn-write cases).
func killAt(tb testing.TB, cpDir, killDir string, segs []uint64, segIdx int, b boundary, extraBytes int) {
	tb.Helper()
	copyDir(tb, cpDir, killDir)
	scratch := &Log{dir: killDir}
	for _, later := range segs[segIdx+1:] {
		if err := os.Remove(scratch.segmentPath(later)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := os.Truncate(scratch.segmentPath(segs[segIdx]), int64(b.end+extraBytes)); err != nil {
		tb.Fatal(err)
	}
}

// TestKillAtEveryRecordBoundary is the crash-recovery oracle: the
// workload runs once with ground-truth fingerprints checkpointed after
// every acked operation, then every record boundary of the log is
// treated as a kill point — the on-disk bytes are cut there, recovery
// replays them into a fresh engine, and the recovered fingerprint must
// equal the runtime fingerprint of exactly that prefix. Worker count 4
// exercises the concurrent plan/commit path (still driven serially, so
// the prefix state at each boundary is well-defined). Small segments
// force rotation, and a tight snapshot cadence forces snapshot+suffix
// recoveries among the kill points.
func TestKillAtEveryRecordBoundary(t *testing.T) {
	for _, topoName := range []string{"geant", "waxman"} {
		for _, workers := range []int{1, 4} {
			topoName, workers := topoName, workers
			t.Run(fmt.Sprintf("%s/workers=%d", topoName, workers), func(t *testing.T) {
				t.Parallel()
				seed := int64(41)
				dir := filepath.Join(t.TempDir(), "wal")
				copies := t.TempDir()
				l, err := Open(dir, Options{SegmentBytes: 16 << 10, SnapshotEvery: 40, NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				eng := testEngine(t, topoName, seed, workers, l.Journal())
				nOps := 140
				if topoName == "waxman" {
					nOps = 90 // second topology rides along at reduced volume
				}
				cps := driveOps(t, eng, l, copies, topoName, nOps, seed, 0)
				eng.Close()
				if err := l.Close(); err != nil {
					t.Fatal(err)
				}
				if l.LastLSN() == 0 {
					t.Fatal("workload appended no records")
				}

				// Ground truth per LSN. Several ops can share an LSN when
				// one changed no state; their fingerprints must agree.
				want := map[uint64]string{}
				for _, cp := range cps {
					if prev, ok := want[cp.lsn]; ok && prev != cp.fp {
						t.Fatalf("two checkpoints at lsn %d with different fingerprints", cp.lsn)
					}
					want[cp.lsn] = cp.fp
				}

				tested, matched := 0, 0
				var prevLSN uint64
				for i, cp := range cps {
					scratch := &Log{dir: cp.dir}
					segs, serr := scratch.segments()
					if serr != nil {
						t.Fatal(serr)
					}
					for si, first := range segs {
						for _, b := range boundaries(t, scratch.segmentPath(first)) {
							if b.lsn <= prevLSN || b.lsn > cp.lsn {
								continue
							}
							killDir := filepath.Join(t.TempDir(), fmt.Sprintf("kill-%d-%d", i, b.lsn))
							killAt(t, cp.dir, killDir, segs, si, b, 0)
							reng, rl, stats := recoverDir(t, killDir, topoName, seed, workers)
							if stats.LastLSN != b.lsn {
								t.Fatalf("kill at lsn %d: recovered to lsn %d", b.lsn, stats.LastLSN)
							}
							if fp, ok := want[b.lsn]; ok {
								got, ferr := Fingerprint(reng)
								if ferr != nil {
									t.Fatal(ferr)
								}
								if got != fp {
									t.Fatalf("kill at lsn %d: recovered fingerprint %s.. want %s..",
										b.lsn, got[:16], fp[:16])
								}
								matched++
							}
							reng.Close()
							rl.Close()
							tested++
						}
					}
					prevLSN = cp.lsn
				}
				if tested == 0 || matched == 0 {
					t.Fatalf("oracle exercised %d kills, %d with fingerprint ground truth", tested, matched)
				}
				t.Logf("%d kill points, %d fingerprint-verified", tested, matched)
			})
		}
	}
}

// TestTornTailRecovery cuts the log mid-record (a torn write) at
// several byte offsets and expects recovery to fall back to the last
// whole record, reporting the typed cause — never a panic, never a
// silent skip.
func TestTornTailRecovery(t *testing.T) {
	seed := int64(7)
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, "geant", seed, 1, l.Journal())
	cps := driveOps(t, eng, l, "", "geant", 60, seed, 0)
	eng.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	want := map[uint64]string{}
	for _, cp := range cps {
		want[cp.lsn] = cp.fp
	}
	scratch := &Log{dir: dir}
	segs, err := scratch.segments()
	if err != nil {
		t.Fatal(err)
	}
	bs := boundaries(t, scratch.segmentPath(segs[len(segs)-1]))
	if len(bs) < 3 {
		t.Fatalf("workload too small: %d records", len(bs))
	}
	b := bs[len(bs)-2] // the cut lands inside the final record
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 1} {
		killDir := filepath.Join(t.TempDir(), fmt.Sprintf("torn-%d", cut))
		killAt(t, dir, killDir, segs, len(segs)-1, b, cut)
		reng, rl, stats := recoverDir(t, killDir, "geant", seed, 1)
		if stats.LastLSN != b.lsn {
			t.Fatalf("torn cut +%d: recovered to lsn %d, want %d", cut, stats.LastLSN, b.lsn)
		}
		if stats.TailError == nil || !errors.Is(stats.TailError, ErrLogTruncated) {
			t.Fatalf("torn cut +%d: tail error = %v, want ErrLogTruncated", cut, stats.TailError)
		}
		if fp, ok := want[b.lsn]; ok {
			got, ferr := Fingerprint(reng)
			if ferr != nil {
				t.Fatal(ferr)
			}
			if got != fp {
				t.Errorf("torn cut +%d: wrong recovered state", cut)
			}
		}
		reng.Close()
		rl.Close()
	}
}

// TestRecoveryContinuation recovers a log, keeps operating on the
// recovered engine, and verifies a second recovery of the extended log
// lands on the continued state — the restart-and-carry-on path.
func TestRecoveryContinuation(t *testing.T) {
	seed := int64(23)
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Options{SnapshotEvery: 30, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, "geant", seed, 1, l.Journal())
	driveOps(t, eng, l, "", "geant", 50, seed, 0)
	eng.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reng, rl, _ := recoverDir(t, dir, "geant", seed, 1)
	driveOps(t, reng, rl, "", "geant", 40, seed+100, 10_000)
	contFP, err := Fingerprint(reng)
	if err != nil {
		t.Fatal(err)
	}
	contLSN := rl.LastLSN()
	reng.Close()
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}

	reng2, rl2, stats := recoverDir(t, dir, "geant", seed, 1)
	defer reng2.Close()
	defer rl2.Close()
	if stats.LastLSN != contLSN {
		t.Fatalf("second recovery reached lsn %d, want %d", stats.LastLSN, contLSN)
	}
	got, err := Fingerprint(reng2)
	if err != nil {
		t.Fatal(err)
	}
	if got != contFP {
		t.Fatalf("state diverged across restart: %s.. != %s..", got[:16], contFP[:16])
	}
}

// TestSnapshotEquivalence pins snapshot+suffix ≡ full-log replay: the
// same log recovered via its snapshot and with the snapshots removed
// (forcing replay from LSN 1) must both land on the live state's
// fingerprint.
func TestSnapshotEquivalence(t *testing.T) {
	seed := int64(99)
	dir := filepath.Join(t.TempDir(), "wal")
	// Generous segments so nothing is garbage-collected and the full
	// chain survives for the snapshot-free replay.
	l, err := Open(dir, Options{SegmentBytes: 64 << 20, SnapshotEvery: 25, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, "geant", seed, 1, l.Journal())
	driveOps(t, eng, l, "", "geant", 80, seed, 0)
	fp, err := Fingerprint(eng)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	withSnap, l1, stats1 := recoverDir(t, dir, "geant", seed, 1)
	if stats1.SnapshotLSN == 0 {
		t.Fatal("expected recovery to start from a snapshot")
	}
	got1, err := Fingerprint(withSnap)
	if err != nil {
		t.Fatal(err)
	}
	withSnap.Close()
	l1.Close()

	bare := filepath.Join(t.TempDir(), "bare")
	copyDir(t, dir, bare)
	matches, err := filepath.Glob(filepath.Join(bare, snapPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	full, l2, stats2 := recoverDir(t, bare, "geant", seed, 1)
	if stats2.SnapshotLSN != 0 {
		t.Fatal("snapshot-free recovery still found a snapshot")
	}
	got2, err := Fingerprint(full)
	if err != nil {
		t.Fatal(err)
	}
	full.Close()
	l2.Close()

	if got1 != fp || got2 != fp {
		t.Fatalf("replay mismatch: live %s.., with-snapshot %s.., full %s..",
			fp[:16], got1[:16], got2[:16])
	}
}

// TestSegmentRotation forces tiny segments and verifies the chain
// recovers across many files.
func TestSegmentRotation(t *testing.T) {
	seed := int64(3)
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Options{SegmentBytes: 2 << 10, SnapshotEvery: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, "geant", seed, 1, l.Journal())
	driveOps(t, eng, l, "", "geant", 60, seed, 0)
	fp, err := Fingerprint(eng)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	l.Close()

	segs, err := (&Log{dir: dir}).segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >= 3 segments at 2 KiB rotation, got %d", len(segs))
	}
	reng, rl, _ := recoverDir(t, dir, "geant", seed, 1)
	defer reng.Close()
	defer rl.Close()
	got, err := Fingerprint(reng)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatal("rotated-chain replay diverged from live state")
	}
}
