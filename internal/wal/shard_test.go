package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
)

// Per-shard durability: each shard's engine journals to its own log
// directory (root/shard-<id>), and a restart recovers every shard
// independently, then re-adopts the recovered sessions into the
// router's owner map so departures keep finding them.

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
	}
	return ids
}

// openShardRouter opens (or creates) one log per shard under root and
// builds a router journaling into them. Every shard runs the same
// seeded GEANT substrate — rebuilt identically on recovery.
func openShardRouter(tb testing.TB, root string, n int, seed int64) (*shard.Router, map[string]*Log) {
	tb.Helper()
	logs := make(map[string]*Log, n)
	pol := recov.DefaultPolicy()
	r, err := shard.New(shard.Options{
		Shards: shardIDs(n),
		Build: func(id string) (*sdn.Network, core.Planner, error) {
			return testNetwork(tb, "geant", seed), core.NewSPPlanner(), nil
		},
		Workers:  2,
		Recovery: &pol,
		Journal: func(id string) (engine.Journal, error) {
			l, oerr := Open(filepath.Join(root, "shard-"+id), Options{
				SegmentBytes: 16 << 10, SnapshotEvery: 30, NoSync: true,
			})
			if oerr != nil {
				return nil, oerr
			}
			logs[id] = l
			return l.Journal(), nil
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return r, logs
}

// recoverShardRouter is the daemon's boot sequence: open logs via the
// journal factory, replay each shard's log into its engine, then adopt
// the recovered sessions into the router. Returns per-shard
// fingerprints.
func recoverShardRouter(tb testing.TB, root string, n int, seed int64) (*shard.Router, map[string]*Log, map[string]string) {
	tb.Helper()
	r, logs := openShardRouter(tb, root, n, seed)
	fps := make(map[string]string, n)
	for _, id := range shardIDs(n) {
		eng := r.Engine(id)
		if _, err := logs[id].Recover(eng); err != nil {
			tb.Fatalf("shard %s: recover: %v", id, err)
		}
		adopted, err := r.AdoptSessions(id)
		if err != nil {
			tb.Fatalf("shard %s: adopt: %v", id, err)
		}
		if live := eng.LiveCount(); adopted != live {
			tb.Fatalf("shard %s: adopted %d of %d live sessions", id, adopted, live)
		}
		fp, err := Fingerprint(eng)
		if err != nil {
			tb.Fatal(err)
		}
		fps[id] = fp
	}
	return r, logs, fps
}

func closeShardRouter(tb testing.TB, r *shard.Router, logs map[string]*Log) {
	tb.Helper()
	r.Close()
	for _, l := range logs {
		if err := l.Close(); err != nil {
			tb.Fatal(err)
		}
	}
}

type shardCheckpoint struct {
	fps map[string]string // shard ID -> fingerprint
	dir string            // copy of the whole root
}

// driveShards runs a deterministic serial multi-tenant workload
// against the router, checkpointing per-shard fingerprints and a full
// root copy after every op.
func driveShards(tb testing.TB, r *shard.Router, logs map[string]*Log, n int, copyRoot, root string, nOps int, seed int64, idBase int) []shardCheckpoint {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := testNetwork(tb, "geant", seed)
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), seed+1)
	if err != nil {
		tb.Fatal(err)
	}
	var cps []shardCheckpoint
	for i := 0; i < nOps; i++ {
		switch p := rng.Intn(100); {
		case p < 60: // admit via a random tenant
			req, gerr := gen.Next()
			if gerr != nil {
				tb.Fatal(gerr)
			}
			req.ID += idBase
			tenant := fmt.Sprintf("tenant-%d", rng.Intn(8))
			if _, aerr := r.Admit(tenant, req); aerr != nil && !core.IsRejection(aerr) {
				tb.Fatalf("op %d: admit: %v", i, aerr)
			}
		case p < 80: // release a live session (owner-map routed)
			// Pick from the engines' actual live tables — the recovery
			// ladder may have shed sessions behind the router's back.
			var liveIDs []int
			for _, id := range shardIDs(n) {
				for _, sol := range r.Engine(id).Lives() {
					liveIDs = append(liveIDs, sol.Request.ID)
				}
			}
			if len(liveIDs) == 0 {
				continue
			}
			id := liveIDs[rng.Intn(len(liveIDs))]
			if _, derr := r.Release(id); derr != nil {
				tb.Fatalf("op %d: release %d: %v", i, id, derr)
			}
		default: // flap a link on one shard
			sid := shardIDs(n)[rng.Intn(n)]
			e := rng.Intn(base.NumEdges())
			up := rng.Intn(2) == 0
			if aerr := r.ApplyShard(sid, engine.Mutation{Kind: engine.LinkState, ID: e, Up: up}); aerr != nil {
				tb.Fatalf("op %d: apply %s: %v", i, sid, aerr)
			}
		}
		fps := make(map[string]string, n)
		for _, id := range shardIDs(n) {
			if logs[id].ShouldSnapshot() {
				if _, serr := logs[id].Snapshot(r.Engine(id)); serr != nil {
					tb.Fatalf("op %d: snapshot %s: %v", i, id, serr)
				}
			}
			fp, ferr := Fingerprint(r.Engine(id))
			if ferr != nil {
				tb.Fatal(ferr)
			}
			fps[id] = fp
		}
		cp := shardCheckpoint{fps: fps}
		if copyRoot != "" {
			cp.dir = filepath.Join(copyRoot, fmt.Sprintf("cp-%04d", len(cps)))
			copyTree(tb, root, cp.dir)
		}
		cps = append(cps, cp)
	}
	return cps
}

// copyTree copies root and its shard-<id> subdirectories.
func copyTree(tb testing.TB, src, dst string) {
	tb.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			copyTree(tb, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(src, e.Name()))
		if rerr != nil {
			tb.Fatal(rerr)
		}
		if werr := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); werr != nil {
			tb.Fatal(werr)
		}
	}
}

// TestShardKillAtOpBoundaries: the sharded variant of the crash
// oracle. A serial multi-tenant workload runs once against a journaled
// router; every op boundary's disk image is then recovered into a
// fresh router and each shard's fingerprint must match its checkpoint.
// Shard counts {1,4} per the acceptance gate; record-level kill points
// are covered by the single-engine oracle (the per-shard log is the
// same Log).
func TestShardKillAtOpBoundaries(t *testing.T) {
	for _, n := range []int{1, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			t.Parallel()
			seed := int64(77)
			root := filepath.Join(t.TempDir(), "walroot")
			copies := t.TempDir()
			r, logs := openShardRouter(t, root, n, seed)
			cps := driveShards(t, r, logs, n, copies, root, 80, seed, 0)
			closeShardRouter(t, r, logs)

			// Sample op boundaries (every 7th plus the last) — each is a
			// full multi-shard recovery, so all of them would be slow.
			for i := 0; i < len(cps); i += 7 {
				cp := cps[i]
				rr, rlogs, fps := recoverShardRouter(t, cp.dir, n, seed)
				for id, want := range cp.fps {
					if fps[id] != want {
						t.Errorf("op %d shard %s: recovered %s.. want %s..",
							i, id, fps[id][:16], want[:16])
					}
				}
				closeShardRouter(t, rr, rlogs)
				if t.Failed() {
					t.FailNow()
				}
			}
			last := cps[len(cps)-1]
			rr, rlogs, fps := recoverShardRouter(t, last.dir, n, seed)
			for id, want := range last.fps {
				if fps[id] != want {
					t.Fatalf("final state shard %s diverged", id)
				}
			}
			// The recovered router must serve departures for recovered
			// sessions (owner map re-adopted).
			var anyLive int
			for _, id := range shardIDs(n) {
				if lives := rr.Engine(id).Lives(); len(lives) > 0 {
					anyLive = lives[0].Request.ID
					break
				}
			}
			if anyLive != 0 {
				if _, err := rr.Release(anyLive); err != nil {
					t.Fatalf("release of recovered session %d: %v", anyLive, err)
				}
			}
			closeShardRouter(t, rr, rlogs)
		})
	}
}

// TestShardRecoveryContinuation: recover a sharded deployment, keep
// operating, recover again — state must carry across restarts.
func TestShardRecoveryContinuation(t *testing.T) {
	seed := int64(13)
	const n = 4
	root := filepath.Join(t.TempDir(), "walroot")
	r, logs := openShardRouter(t, root, n, seed)
	driveShards(t, r, logs, n, "", root, 50, seed, 0)
	closeShardRouter(t, r, logs)

	r2, logs2, _ := recoverShardRouter(t, root, n, seed)
	driveShards(t, r2, logs2, n, "", root, 40, seed+1, 100_000)
	want := make(map[string]string, n)
	for _, id := range shardIDs(n) {
		fp, err := Fingerprint(r2.Engine(id))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = fp
	}
	closeShardRouter(t, r2, logs2)

	r3, logs3, fps := recoverShardRouter(t, root, n, seed)
	defer closeShardRouter(t, r3, logs3)
	for id, fp := range want {
		if fps[id] != fp {
			t.Fatalf("shard %s diverged across second restart", id)
		}
	}
}
