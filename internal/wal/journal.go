package wal

import (
	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
)

// Journal adapts a Log to the engine's durability hook: each outcome
// becomes one appended record, and Barrier maps straight to the log's
// group-commit fsync. Construction order resolves the
// chicken-and-egg between log and engine — open the log, build the
// engine with the journal attached, then Recover:
//
//	log, _ := wal.Open(dir, wal.Options{})
//	eng := engine.NewWith(nw, planner, engine.WithJournal(log.Journal()))
//	stats, _ := log.Recover(eng)
//
// Replay is safe with the journal already attached because the
// engine's Restore surface never journals — replayed records are
// already in the log.
type Journal struct {
	l *Log
}

var _ engine.Journal = (*Journal)(nil)

// Journal returns the log's engine.Journal adapter.
func (l *Log) Journal() *Journal { return &Journal{l: l} }

// Admitted records a committed admission.
func (j *Journal) Admitted(req *multicast.Request, sol *core.Solution) error {
	_, err := j.l.Append(&Record{
		Type:    obs.Admitted,
		Request: req.ID,
		Req:     encodeRequest(req),
		Sol:     encodeSolution(sol),
	})
	return err
}

// Departed records a released session.
func (j *Journal) Departed(reqID int) error {
	_, err := j.l.Append(&Record{Type: obs.Departed, Request: reqID})
	return err
}

// Repaired records a session re-realised by sol.
func (j *Journal) Repaired(reqID int, sol *core.Solution) error {
	_, err := j.l.Append(&Record{
		Type:    obs.Repaired,
		Request: reqID,
		Req:     encodeRequest(sol.Request),
		Sol:     encodeSolution(sol),
	})
	return err
}

// Shed records a session dropped by the recovery ladder.
func (j *Journal) Shed(reqID int) error {
	_, err := j.l.Append(&Record{Type: obs.Shed, Request: reqID})
	return err
}

// MutationsApplied records an accepted maintenance batch.
func (j *Journal) MutationsApplied(muts []engine.Mutation) error {
	_, err := j.l.Append(&Record{Type: obs.MutationApplied, Muts: encodeMutations(muts)})
	return err
}

// Barrier makes everything appended so far durable (one fsync).
func (j *Journal) Barrier() error { return j.l.Barrier() }
