package wal

import (
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
)

// Benchmarks for the durability path: raw append throughput, the
// group-commit barrier (the fsync every ack waits behind), the
// end-to-end overhead a journal adds to an admit/release pair, and
// boot-time recovery replay. Numbers are recorded in
// results/BENCH_wal.json; the correctness suite backing them is this
// package's kill/corruption/replay tests.

// benchAdmitRecord produces one representative admitted record — a
// real GÉANT admission with its realised tree — so append benchmarks
// pay the true encode + CRC cost, not a toy payload's.
func benchAdmitRecord(b *testing.B) *Record {
	b.Helper()
	eng := testEngine(b, "geant", 7, 0, nil)
	defer eng.Close()
	base := testNetwork(b, "geant", 7)
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 8)
	if err != nil {
		b.Fatal(err)
	}
	for {
		req, gerr := gen.Next()
		if gerr != nil {
			b.Fatal(gerr)
		}
		sol, aerr := eng.Admit(req)
		if aerr == nil {
			return &Record{
				Type:    obs.Admitted,
				Request: req.ID,
				Req:     encodeRequest(req),
				Sol:     encodeSolution(sol),
			}
		}
		if !core.IsRejection(aerr) {
			b.Fatal(aerr)
		}
	}
}

// BenchmarkAppend measures one buffered record append (encode, frame,
// CRC, segment write; rotation amortised at the default 4 MiB size).
// Durability is the barrier's job, so the fsync is benchmarked there.
func BenchmarkAppend(b *testing.B) {
	rec := benchAdmitRecord(b)
	l, err := Open(b.TempDir(), Options{NoSync: true, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc := *rec // Append assigns the LSN; never reuse a stamped record
		if _, err := l.Append(&rc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBarrier measures one append + group-commit barrier — the
// latency floor of a durable ack. The nosync variant isolates the
// non-fsync share of that cost.
func BenchmarkBarrier(b *testing.B) {
	for _, m := range []struct {
		name   string
		noSync bool
	}{
		{"fsync", false},
		{"nosync", true},
	} {
		b.Run(m.name, func(b *testing.B) {
			rec := benchAdmitRecord(b)
			l, err := Open(b.TempDir(), Options{NoSync: m.noSync, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc := *rec
				if _, err := l.Append(&rc); err != nil {
					b.Fatal(err)
				}
				if err := l.Barrier(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdmitDurable measures a full admit/release round trip
// through the engine — bare, with a buffered journal, and with fsync
// barriers — so the journal's share of end-to-end admission cost is
// directly visible.
func BenchmarkAdmitDurable(b *testing.B) {
	for _, m := range []struct {
		name    string
		journal bool
		noSync  bool
	}{
		{"bare", false, false},
		{"wal-nosync", true, true},
		{"wal-fsync", true, false},
	} {
		b.Run(m.name, func(b *testing.B) {
			var j engine.Journal
			if m.journal {
				l, err := Open(b.TempDir(), Options{NoSync: m.noSync, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				j = l.Journal()
			}
			eng := testEngine(b, "geant", 7, 0, j)
			defer eng.Close()
			base := testNetwork(b, "geant", 7)
			gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 8)
			if err != nil {
				b.Fatal(err)
			}
			// One admissible request, admitted and released each
			// iteration, keeps the network in steady state at any b.N.
			var req *multicast.Request
			for req == nil {
				r, gerr := gen.Next()
				if gerr != nil {
					b.Fatal(gerr)
				}
				switch _, aerr := eng.Admit(r); {
				case aerr == nil:
					if _, derr := eng.Depart(r.ID); derr != nil {
						b.Fatal(derr)
					}
					req = r
				case !core.IsRejection(aerr):
					b.Fatal(aerr)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Admit(req); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Depart(req.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover measures cold boot: open the log, rebuild the base
// substrate, replay every record into a fresh engine. The log is
// snapshot-free so the cost is pure replay — the worst case a
// snapshot cadence exists to bound.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{NoSync: true, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	eng := testEngine(b, "geant", 7, 0, l.Journal())
	base := testNetwork(b, "geant", 7)
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 8)
	if err != nil {
		b.Fatal(err)
	}
	// A churning workload: admits with periodic releases of the oldest
	// live session, so replay exercises both record kinds.
	var live []int
	for i := 0; i < 400; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			b.Fatal(gerr)
		}
		switch _, aerr := eng.Admit(req); {
		case aerr == nil:
			live = append(live, req.ID)
		case !core.IsRejection(aerr):
			b.Fatal(aerr)
		}
		if len(live) > 40 {
			if _, derr := eng.Depart(live[0]); derr != nil {
				b.Fatal(derr)
			}
			live = live[1:]
		}
	}
	records := l.LastLSN()
	eng.Close()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := Open(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		re := testEngine(b, "geant", 7, 0, nil)
		stats, rerr := rl.Recover(re)
		if rerr != nil {
			b.Fatal(rerr)
		}
		if stats.Records != int(records) {
			b.Fatalf("replayed %d records, logged %d", stats.Records, records)
		}
		re.Close()
		if err := rl.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records), "records/op")
}
