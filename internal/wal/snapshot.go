package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/sdn"
)

// Snapshots bound replay time: a snapshot captures the complete
// recoverable state — per-link capacity/residual/up-state, per-server
// the same, and every live session with its logged solution — keyed by
// the LSN it covers and stamped with the state fingerprint, so
// recovery can start from the snapshot and replay only the record
// suffix, and verify on arrival that snapshot-plus-suffix equals what
// the full log would have produced.
//
// Residuals are recorded verbatim (not re-derived from capacities
// minus allocations): the residual floats are a product of the
// allocate/release history, and restoring the recorded vectors keeps
// the recovered network bit-identical (see sdn.RawSnapshot).

// snapshotVersion guards the snapshot schema.
const snapshotVersion = 1

// snapshotFile is the JSON body of a snap-<lsn>.json file (wrapped in
// one CRC frame by writeFramed).
type snapshotFile struct {
	Version     int    `json:"version"`
	LSN         uint64 `json:"lsn"`
	Fingerprint string `json:"fingerprint"`
	// Links holds, per edge ID ascending, [capacity, residual]; Down
	// lists the failed edge IDs.
	LinkCaps  []float64 `json:"link_caps"`
	LinkFree  []float64 `json:"link_free"`
	DownLinks []int     `json:"down_links,omitempty"`
	// Servers hold the per-server state, ascending node ID.
	Servers []serverSnap `json:"servers"`
	// Lives holds every live session, ascending request ID.
	Lives []liveSnap `json:"lives"`
}

type serverSnap struct {
	Node int     `json:"node"`
	Cap  float64 `json:"cap"`
	Free float64 `json:"free"`
	Down bool    `json:"down,omitempty"`
}

type liveSnap struct {
	Req *RequestRecord  `json:"req"`
	Sol *SolutionRecord `json:"sol"`
}

// Snapshot captures the engine's state atomically (between operations,
// on the writer goroutine), writes it as snap-<lastLSN>.json, and
// garbage-collects segments and older snapshots the new snapshot
// subsumes (the previous snapshot is kept as a fallback). It returns
// the covered LSN. The engine must be the one this log journals for —
// the covered LSN is read inside the capture, so it is exact.
func (l *Log) Snapshot(eng *engine.Engine) (uint64, error) {
	var snap *snapshotFile
	err := eng.SnapshotState(func(nw *sdn.Network, lives []*core.Solution) {
		l.mu.Lock()
		lsn := l.lastLSN
		l.mu.Unlock()
		snap = captureSnapshot(lsn, nw, lives)
	})
	if err != nil {
		return 0, err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("wal: encode snapshot: %w", err)
	}
	if err := writeFramed(l.dir, l.snapshotPath(snap.LSN), payload, l.opts.NoSync); err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.snapLSN = snap.LSN
	l.sinceSnap = 0
	l.mu.Unlock()
	n, gcErr := l.collect(snap.LSN)
	l.opts.Obs.Snapshotted(n)
	return snap.LSN, gcErr
}

// captureSnapshot serialises the held-still state.
func captureSnapshot(lsn uint64, nw *sdn.Network, lives []*core.Solution) *snapshotFile {
	snap := &snapshotFile{
		Version:     snapshotVersion,
		LSN:         lsn,
		Fingerprint: fingerprintOf(nw, lives),
		LinkCaps:    make([]float64, nw.NumEdges()),
		LinkFree:    make([]float64, nw.NumEdges()),
	}
	for e := 0; e < nw.NumEdges(); e++ {
		snap.LinkCaps[e] = nw.BandwidthCap(e)
		snap.LinkFree[e] = nw.ResidualBandwidth(e)
		if !nw.LinkUp(e) {
			snap.DownLinks = append(snap.DownLinks, e)
		}
	}
	servers := append([]int(nil), nw.Servers()...)
	sort.Ints(servers)
	for _, v := range servers {
		snap.Servers = append(snap.Servers, serverSnap{
			Node: v,
			Cap:  nw.ComputeCap(v),
			Free: nw.ResidualCompute(v),
			Down: !nw.ServerUp(v),
		})
	}
	for _, sol := range lives {
		snap.Lives = append(snap.Lives, liveSnap{
			Req: encodeRequest(sol.Request),
			Sol: encodeSolution(sol),
		})
	}
	return snap
}

// collect garbage-collects after the snapshot at snapLSN: snapshots
// older than the previous one go (two are kept: the new snapshot and
// one fallback), and then every segment the OLDEST KEPT snapshot fully
// covers (except the active one). The horizon is the fallback snapshot,
// not the new one — the fallback is only usable if the records between
// it and the head are still on disk. Returns the surviving segment
// count.
func (l *Log) collect(snapLSN uint64) (int, error) {
	snaps, err := l.snapshots()
	if err != nil {
		return 0, err
	}
	var firstErr error
	for i := 0; i+2 < len(snaps); i++ {
		if rerr := os.Remove(l.snapshotPath(snaps[i])); rerr != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: collect snapshot: %w", rerr)
		}
	}
	horizon := snapLSN
	if len(snaps) >= 2 {
		horizon = snaps[len(snaps)-2]
	}
	segs, err := l.segments()
	if err != nil {
		return 0, err
	}
	kept := len(segs)
	// A segment's records span [firstLSN, nextFirstLSN-1]; it is
	// collectable when the NEXT segment starts at or below horizon+1.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] > horizon+1 {
			break
		}
		if rerr := os.Remove(l.segmentPath(segs[i])); rerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: collect segment: %w", rerr)
			}
			continue
		}
		kept--
	}
	l.mu.Lock()
	l.segCount = kept
	l.mu.Unlock()
	return kept, firstErr
}

// readSnapshot loads and verifies the snapshot covering lsn.
func (l *Log) readSnapshot(lsn uint64) (*snapshotFile, error) {
	payload, err := readFramed(l.snapshotPath(lsn))
	if err != nil {
		return nil, err
	}
	snap := new(snapshotFile)
	if err := json.Unmarshal(payload, snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot %016x: %v", ErrLogCorrupt, lsn, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot %016x: unsupported version %d",
			ErrLogCorrupt, lsn, snap.Version)
	}
	if snap.LSN != lsn {
		return nil, fmt.Errorf("%w: snapshot %016x claims lsn %d",
			ErrLogCorrupt, lsn, snap.LSN)
	}
	return snap, nil
}

// restoreSnapshot installs snap into a freshly-built engine (base
// topology, nothing live). Order matters: capacities first (validated
// against zero allocation), then the live sessions (all links still
// up, so their logged trees allocate), then the failure state, and
// finally the recorded residual vectors verbatim.
func restoreSnapshot(eng *engine.Engine, snap *snapshotFile) error {
	var muts []engine.Mutation
	for e, cap := range snap.LinkCaps {
		muts = append(muts, engine.Mutation{Kind: engine.LinkCapacity, ID: e, Capacity: cap})
	}
	for _, s := range snap.Servers {
		muts = append(muts, engine.Mutation{Kind: engine.ServerCapacity, ID: s.Node, Capacity: s.Cap})
	}
	if len(muts) > 0 {
		if err := eng.RestoreApply(muts...); err != nil {
			return fmt.Errorf("wal: restore capacities: %w", err)
		}
	}
	for _, live := range snap.Lives {
		req, err := live.Req.Decode()
		if err != nil {
			return fmt.Errorf("%w: snapshot live session: %v", ErrLogCorrupt, err)
		}
		if live.Sol == nil {
			return fmt.Errorf("%w: snapshot live session %d without solution", ErrLogCorrupt, req.ID)
		}
		if err := eng.Restore(req, live.Sol.Decode(req)); err != nil {
			return fmt.Errorf("wal: restore session %d: %w", req.ID, err)
		}
	}
	var downs []engine.Mutation
	for _, e := range snap.DownLinks {
		downs = append(downs, engine.Mutation{Kind: engine.LinkState, ID: e, Up: false})
	}
	for _, s := range snap.Servers {
		if s.Down {
			downs = append(downs, engine.Mutation{Kind: engine.ServerState, ID: s.Node, Up: false})
		}
	}
	if len(downs) > 0 {
		if err := eng.RestoreApply(downs...); err != nil {
			return fmt.Errorf("wal: restore failure state: %w", err)
		}
	}
	srvFree := make(map[int]float64, len(snap.Servers))
	for _, s := range snap.Servers {
		srvFree[s.Node] = s.Free
	}
	if err := eng.RestoreResiduals(snap.LinkFree, srvFree); err != nil {
		return fmt.Errorf("wal: restore residuals: %w", err)
	}
	return nil
}
