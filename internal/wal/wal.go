// Package wal makes the admission engine durable: an append-only
// write-ahead log of admission outcomes (internal/engine's Journal
// hook) plus periodic snapshots of the live state, from which recovery
// reconstructs the exact pre-crash engine — live table, residual
// floats and all — verified by state-fingerprint equality.
//
// The log records *outcomes*, not inputs: an admitted record carries
// the full request and the realised solution, so replay re-installs
// the logged trees verbatim (engine.Restore and friends) instead of
// re-running planners. That makes recovery independent of planner,
// policy, worker count and any algorithmic change shipped between
// crash and restart — the log is the state, not a workload to re-run.
//
// Layout: a log directory holds segment files `wal-%016x.seg` (named
// by the LSN of their first record; fixed-size rotation) and snapshot
// files `snap-%016x.json` (named by the LSN they cover). Records are
// length-prefixed, CRC-checksummed JSON frames (codec.go); snapshots
// are a single such frame. A crash can tear the tail of the newest
// segment — Open cuts the tail back to the last valid record and
// reports it — while damage anywhere else fails recovery with a typed
// error (ErrLogCorrupt / ErrLogTruncated) rather than silently
// skipping records.
//
// Durability contract: the engine appends on its writer goroutine and
// calls Barrier (one fsync, group-committed per epoch) before acking —
// "acked implies logged". The first append/sync failure is sticky: the
// log refuses further writes, the engine surfaces ErrDurability, and
// the process restarts into recovery.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nfvmcast/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultSnapshotEvery is the snapshot cadence hint when
// Options.SnapshotEvery is zero: ShouldSnapshot turns true after this
// many records since the last snapshot.
const DefaultSnapshotEvery = 1024

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".json"
)

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this
	// size (checked before each append, so records never split across
	// segments). 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// SnapshotEvery is the cadence hint consumed by ShouldSnapshot:
	// how many records may accumulate before the owner should write a
	// snapshot. 0 selects DefaultSnapshotEvery; negative disables the
	// hint.
	SnapshotEvery int
	// NoSync skips the fsync in Barrier — only for tests and
	// benchmarks that measure the non-sync path; a production log
	// without fsync does not survive power loss.
	NoSync bool
	// Obs receives the log's instruments (nil disables them).
	Obs *obs.WALObs
}

// Log is one append-only write-ahead log directory. Appends arrive
// from a single goroutine at a time (the engine's writer); reads
// (Replay, stats) may be concurrent with nothing — recovery runs
// before the engine takes traffic. The mutex guards the cheap
// bookkeeping so stats helpers stay safe anytime.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File // active segment
	segPath   string
	segStart  uint64 // first LSN the active segment holds (or will)
	segBytes  int64
	segCount  int
	lastLSN   uint64 // last durable-appendable LSN assigned
	snapLSN   uint64 // LSN covered by the newest snapshot on disk
	sinceSnap int    // records appended since the newest snapshot
	dirty     bool   // bytes written since the last sync
	tailErr   error  // the torn tail Open cut, if any (typed)
	err       error  // sticky append/sync failure
	buf       []byte // frame scratch
}

// Open opens (or creates) the log directory, scans the segment chain,
// cuts a torn tail off the newest segment if a crash left one (the
// typed cause is kept for TailError and ReplayStats), and positions
// the log to append after the last valid record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts}

	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	snaps, err := l.snapshots()
	if err != nil {
		return nil, err
	}
	if len(snaps) > 0 {
		l.snapLSN = snaps[len(snaps)-1]
	}

	if len(segs) == 0 {
		// Fresh log — or one whose segments were all collected into a
		// snapshot; either way the next record follows what is known.
		l.lastLSN = l.snapLSN
		l.segStart = l.lastLSN + 1
		if err := l.createSegment(l.segStart); err != nil {
			return nil, err
		}
		l.segCount = 1
		l.observeOpen()
		return l, nil
	}

	// Validate the chain shape: each segment's name must announce the
	// LSN that follows the previous segment's records. The full record
	// walk happens in Replay; here the last segment is scanned to find
	// the append position (and cut a torn tail).
	last := segs[len(segs)-1]
	lastPath := l.segmentPath(last)
	data, err := os.ReadFile(lastPath)
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", lastPath, err)
	}
	validEnd := 0
	lsn := last - 1
	for validEnd < len(data) {
		rec, next, rerr := readFrame(data, validEnd)
		if rerr != nil {
			l.tailErr = fmt.Errorf("%s: %w", filepath.Base(lastPath), rerr)
			break
		}
		if rec.LSN != lsn+1 {
			return nil, fmt.Errorf("%w: %s: record lsn %d follows %d",
				ErrLogCorrupt, filepath.Base(lastPath), rec.LSN, lsn)
		}
		lsn = rec.LSN
		validEnd = next
	}
	if l.tailErr != nil {
		if err := os.Truncate(lastPath, int64(validEnd)); err != nil {
			return nil, fmt.Errorf("wal: cut torn tail of %s: %w", lastPath, err)
		}
	}

	f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s for append: %w", lastPath, err)
	}
	l.f = f
	l.segPath = lastPath
	l.segStart = last
	l.segBytes = int64(validEnd)
	l.segCount = len(segs)
	l.lastLSN = lsn
	if l.snapLSN > l.lastLSN {
		// The snapshot is ahead of every surviving record (segments
		// after it were lost): the snapshot state is authoritative.
		l.lastLSN = l.snapLSN
	}
	l.observeOpen()
	return l, nil
}

func (l *Log) observeOpen() {
	l.opts.Obs.Rotated(l.segCount) // sets the segment gauge
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the LSN of the most recently appended (or recovered)
// record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// TailError returns the typed framing error of the torn tail Open cut
// off the newest segment, or nil when the log closed cleanly. The tail
// never contains an acked record — acks wait for Barrier — so a
// non-nil TailError is expected after a crash, not a data-loss signal.
func (l *Log) TailError() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailErr
}

// Err returns the sticky append/sync failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ShouldSnapshot reports whether at least SnapshotEvery records have
// accumulated since the last snapshot — the owner's cue to call
// Snapshot. (A hint, not a trigger: snapshotting needs the engine,
// which the log does not hold.)
func (l *Log) ShouldSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.SnapshotEvery > 0 && l.sinceSnap >= l.opts.SnapshotEvery
}

// Append assigns the next LSN to rec and writes its frame to the
// active segment. The record is NOT durable until the next Barrier.
// Errors are sticky: after the first failure every Append and Barrier
// fails, so a durability gap can never reopen silently.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return 0, err
		}
	}
	rec.LSN = l.lastLSN + 1
	buf, err := appendFrame(l.buf[:0], rec)
	l.buf = buf
	if err != nil {
		l.err = err
		return 0, err
	}
	if _, werr := l.f.Write(buf); werr != nil {
		l.err = fmt.Errorf("wal: append lsn=%d: %w", rec.LSN, werr)
		return 0, l.err
	}
	l.lastLSN = rec.LSN
	l.segBytes += int64(len(buf))
	l.sinceSnap++
	l.dirty = true
	l.opts.Obs.Appended(rec.LSN, len(buf))
	return rec.LSN, nil
}

// Barrier makes every appended record durable (fsync of the active
// segment). The engine calls it once per ack boundary — per operation,
// or once per commit epoch in batched mode (group commit).
func (l *Log) Barrier() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: sync %s: %w", l.segPath, err)
			return l.err
		}
	}
	l.dirty = false
	l.opts.Obs.Fsynced()
	return nil
}

// rotateLocked seals the active segment and starts a new one named by
// the next LSN. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if l.dirty && !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s before rotation: %w", l.segPath, err)
		}
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.segPath, err)
	}
	if err := l.createSegment(l.lastLSN + 1); err != nil {
		return err
	}
	l.segCount++
	l.opts.Obs.Rotated(l.segCount)
	return nil
}

// createSegment creates and opens wal-<firstLSN>.seg for append and
// syncs the directory so the file itself survives a crash.
func (l *Log) createSegment(firstLSN uint64) error {
	path := l.segmentPath(firstLSN)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.segPath = path
	l.segStart = firstLSN
	l.segBytes = 0
	if !l.opts.NoSync {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

// Close seals the log (final sync). The log must not be used after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	var first error
	if l.dirty && !l.opts.NoSync {
		first = l.f.Sync()
	}
	if cerr := l.f.Close(); first == nil {
		first = cerr
	}
	l.f = nil
	if first != nil && l.err == nil {
		l.err = first
	}
	return first
}

// segmentPath names the segment whose first record is firstLSN.
func (l *Log) segmentPath(firstLSN uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix))
}

// snapshotPath names the snapshot covering up to lsn.
func (l *Log) snapshotPath(lsn uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix))
}

// segments lists the segment chain's first-LSNs, ascending.
func (l *Log) segments() ([]uint64, error) {
	return l.scanDir(segPrefix, segSuffix)
}

// snapshots lists the snapshot LSNs, ascending.
func (l *Log) snapshots() ([]uint64, error) {
	return l.scanDir(snapPrefix, snapSuffix)
}

func (l *Log) scanDir(prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list dir: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		v, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil {
			continue // foreign file; leave it alone
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close dir: %w", cerr)
	}
	return nil
}

// writeFramed writes one [len][crc][payload] frame as the whole
// content of path, via temp file + rename (atomic replacement).
func writeFramed(dir, path string, payload []byte, noSync bool) error {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("wal: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(hdr[:]); err != nil {
		cleanup()
		return fmt.Errorf("wal: write %s: %w", path, err)
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return fmt.Errorf("wal: write %s: %w", path, err)
	}
	if !noSync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wal: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("wal: rename %s: %w", path, err)
	}
	if noSync {
		return nil
	}
	return syncDir(dir)
}

// readFramed reads a file written by writeFramed and verifies its
// frame, returning the payload.
func readFramed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderSize {
		return nil, fmt.Errorf("%w: %s: %d byte file", ErrLogTruncated, filepath.Base(path), len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	sum := binary.LittleEndian.Uint32(data[4:8])
	if n != len(data)-frameHeaderSize {
		return nil, fmt.Errorf("%w: %s: header says %d payload bytes, file holds %d",
			ErrLogTruncated, filepath.Base(path), n, len(data)-frameHeaderSize)
	}
	payload := data[frameHeaderSize:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: %s: checksum mismatch (stored %08x, computed %08x)",
			ErrLogCorrupt, filepath.Base(path), sum, got)
	}
	return payload, nil
}
