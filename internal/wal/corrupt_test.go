package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildLog drives a workload into a fresh log dir with tiny segments
// (so the chain has several files) and returns the dir plus the live
// fingerprint.
func buildLog(tb testing.TB, snapshotEvery int) (string, string) {
	tb.Helper()
	seed := int64(17)
	dir := filepath.Join(tb.TempDir(), "wal")
	l, err := Open(dir, Options{SegmentBytes: 4 << 10, SnapshotEvery: snapshotEvery, NoSync: true})
	if err != nil {
		tb.Fatal(err)
	}
	eng := testEngine(tb, "geant", seed, 1, l.Journal())
	driveOps(tb, eng, l, "", "geant", 70, seed, 0)
	fp, err := Fingerprint(eng)
	if err != nil {
		tb.Fatal(err)
	}
	eng.Close()
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	return dir, fp
}

func flipByte(tb testing.TB, path string, off int64) {
	tb.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		tb.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		tb.Fatal(err)
	}
}

// TestMidChainCorruptionFailsTyped: a bit flip in any segment that is
// not the newest must fail recovery with the typed sentinel — damage
// before acked records that follow it can never be skipped over.
func TestMidChainCorruptionFailsTyped(t *testing.T) {
	dir, _ := buildLog(t, -1) // no snapshots: every segment replays
	scratch := &Log{dir: dir}
	segs, err := scratch.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle of an early segment.
	for _, segIdx := range []int{0, len(segs) / 2} {
		t.Run(fmt.Sprintf("segment-%d", segIdx), func(t *testing.T) {
			damaged := filepath.Join(t.TempDir(), "damaged")
			copyDir(t, dir, damaged)
			dl := &Log{dir: damaged}
			path := dl.segmentPath(segs[segIdx])
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			flipByte(t, path, info.Size()/2)

			l, err := Open(damaged, Options{NoSync: true})
			if err != nil {
				// Open only scans the newest segment, so it should
				// succeed; if the chain shape itself broke, the error
				// must still be typed.
				if !errors.Is(err, ErrLogCorrupt) && !errors.Is(err, ErrLogTruncated) {
					t.Fatalf("untyped open error: %v", err)
				}
				return
			}
			eng := testEngine(t, "geant", 17, 1, nil)
			defer eng.Close()
			defer l.Close()
			_, rerr := l.Recover(eng)
			if rerr == nil {
				t.Fatal("recovery swallowed mid-chain corruption")
			}
			if !errors.Is(rerr, ErrLogCorrupt) && !errors.Is(rerr, ErrLogTruncated) {
				t.Fatalf("untyped recovery error: %v", rerr)
			}
		})
	}
}

// TestNewestSegmentCorruptionCutsTail: a bit flip in the newest segment
// is indistinguishable from a torn write, so Open cuts back to the last
// record before the damage and recovery reports the typed cause in
// TailError — surfaced, not silent.
func TestNewestSegmentCorruptionCutsTail(t *testing.T) {
	dir, _ := buildLog(t, -1)
	scratch := &Log{dir: dir}
	segs, err := scratch.segments()
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	bs := boundaries(t, scratch.segmentPath(last))
	if len(bs) < 2 {
		t.Skipf("newest segment holds %d records", len(bs))
	}
	damaged := filepath.Join(t.TempDir(), "damaged")
	copyDir(t, dir, damaged)
	dl := &Log{dir: damaged}
	// Flip a byte inside the final record's payload.
	flipByte(t, dl.segmentPath(last), int64(bs[len(bs)-2].end+frameHeaderSize+2))

	reng, rl, stats := recoverDir(t, damaged, "geant", 17, 1)
	defer reng.Close()
	defer rl.Close()
	if stats.LastLSN != bs[len(bs)-2].lsn {
		t.Fatalf("recovered to lsn %d, want %d", stats.LastLSN, bs[len(bs)-2].lsn)
	}
	if stats.TailError == nil || !errors.Is(stats.TailError, ErrLogCorrupt) {
		t.Fatalf("tail error = %v, want ErrLogCorrupt", stats.TailError)
	}
}

// TestCorruptSnapshotFallsBack: damage to the newest snapshot must fall
// recovery back to the previous snapshot (kept by GC for exactly this),
// and the recovered fingerprint must still match the live state.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir, fp := buildLog(t, 20) // several snapshots over 70 ops
	scratch := &Log{dir: dir}
	snaps, err := scratch.snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("need >= 2 snapshots on disk, got %d", len(snaps))
	}
	damaged := filepath.Join(t.TempDir(), "damaged")
	copyDir(t, dir, damaged)
	dl := &Log{dir: damaged}
	newest := dl.snapshotPath(snaps[len(snaps)-1])
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, newest, info.Size()/2)

	reng, rl, stats := recoverDir(t, damaged, "geant", 17, 1)
	defer reng.Close()
	defer rl.Close()
	if stats.SnapshotLSN != snaps[len(snaps)-2] {
		t.Fatalf("recovered from snapshot lsn %d, want fallback %d",
			stats.SnapshotLSN, snaps[len(snaps)-2])
	}
	got, err := Fingerprint(reng)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatal("fallback recovery diverged from live state")
	}
}

// TestAllSnapshotsCorruptWithGC: when every snapshot is damaged AND the
// early segments were already collected, recovery must fail with a
// typed error — a partial replay would silently drop sessions.
func TestAllSnapshotsCorruptWithGC(t *testing.T) {
	dir, _ := buildLog(t, 20)
	scratch := &Log{dir: dir}
	snaps, err := scratch.snapshots()
	if err != nil {
		t.Fatal(err)
	}
	segs, err := scratch.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots on disk")
	}
	if segs[0] == 1 {
		t.Skip("GC kept the full chain; full replay would legitimately succeed")
	}
	damaged := filepath.Join(t.TempDir(), "damaged")
	copyDir(t, dir, damaged)
	dl := &Log{dir: damaged}
	for _, s := range snaps {
		path := dl.snapshotPath(s)
		info, serr := os.Stat(path)
		if serr != nil {
			t.Fatal(serr)
		}
		flipByte(t, path, info.Size()/2)
	}

	l, err := Open(damaged, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	eng := testEngine(t, "geant", 17, 1, nil)
	defer eng.Close()
	_, rerr := l.Recover(eng)
	if rerr == nil {
		t.Fatal("recovery succeeded with every snapshot damaged and the chain GC'd")
	}
	if !errors.Is(rerr, ErrLogCorrupt) && !errors.Is(rerr, ErrLogTruncated) {
		t.Fatalf("untyped recovery error: %v", rerr)
	}
}

// TestEmptyDirRecovery: a fresh log dir recovers to an empty engine
// and accepts appends from LSN 1.
func TestEmptyDirRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	reng, rl, stats := recoverDir(t, dir, "geant", 1, 1)
	defer reng.Close()
	defer rl.Close()
	if stats.LastLSN != 0 || stats.Records != 0 || stats.SnapshotLSN != 0 {
		t.Fatalf("fresh dir replayed something: %+v", stats)
	}
	if n := reng.LiveCount(); n != 0 {
		t.Fatalf("fresh recovery has %d live sessions", n)
	}
}
