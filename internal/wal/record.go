package wal

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/obs"
)

// Record is one logged state-changing outcome. The schema reuses the
// obs admission-event vocabulary (obs.Admitted, obs.Departed,
// obs.Repaired, obs.Shed, obs.MutationApplied) with the payload the
// events deliberately omit: the full request and realised solution, so
// replay restores logged outcomes verbatim instead of re-running
// planners — a replayed engine is bit-identical to the pre-crash one
// regardless of planner, policy or worker count. Payloads are JSON
// (encoding/json round-trips float64 exactly), framed and checksummed
// by the segment codec (codec.go).
type Record struct {
	// LSN is the record's log sequence number, assigned by Append:
	// consecutive from 1, no gaps. A gap on replay means a lost record
	// and fails recovery with ErrLogCorrupt.
	LSN uint64 `json:"lsn"`
	// Type is the outcome's lifecycle step (the obs event vocabulary).
	Type obs.EventType `json:"type"`
	// Request is the request ID the outcome concerns (absent for
	// mutation_applied records).
	Request int `json:"request,omitempty"`
	// Req is the admitted/repaired request (admitted and repaired
	// records carry it so replay never needs a live-table lookup).
	Req *RequestRecord `json:"req,omitempty"`
	// Sol is the realised solution (admitted and repaired records).
	Sol *SolutionRecord `json:"sol,omitempty"`
	// Muts is the typed maintenance batch (mutation_applied records).
	Muts []MutationRecord `json:"muts,omitempty"`
}

// RequestRecord is the wire form of a multicast.Request.
type RequestRecord struct {
	ID            int      `json:"id"`
	Source        int      `json:"source"`
	Destinations  []int    `json:"dests"`
	BandwidthMbps float64  `json:"bw"`
	Chain         []string `json:"chain"`
}

// HopRecord is the wire form of one directed tree hop.
type HopRecord struct {
	From      int  `json:"from"`
	To        int  `json:"to"`
	Edge      int  `json:"edge"`
	Processed bool `json:"proc,omitempty"`
}

// SolutionRecord is the wire form of a core.Solution: the serving
// nodes, the pseudo-tree's directed hops in insertion order (order is
// preserved so the restored tree is structurally identical), and both
// costs verbatim.
type SolutionRecord struct {
	Servers []int `json:"servers"`
	// ServerDemands, when present, is the per-server compute split of a
	// distributed-chain placement (position-aligned with Servers); its
	// absence means the consolidated model (full chain demand per
	// server), so legacy logs replay unchanged.
	ServerDemands   []float64   `json:"segd,omitempty"`
	Hops            []HopRecord `json:"hops"`
	OperationalCost float64     `json:"op_cost"`
	SelectionCost   float64     `json:"sel_cost"`
}

// MutationRecord is the wire form of one engine.Mutation.
type MutationRecord struct {
	Kind     string  `json:"kind"`
	ID       int     `json:"id"`
	Up       bool    `json:"up,omitempty"`
	Capacity float64 `json:"cap,omitempty"`
}

// encodeRequest converts a request to its wire form.
func encodeRequest(req *multicast.Request) *RequestRecord {
	funcs := req.Chain.Functions()
	chain := make([]string, len(funcs))
	for i, f := range funcs {
		chain[i] = f.String()
	}
	return &RequestRecord{
		ID:            req.ID,
		Source:        req.Source,
		Destinations:  append([]int(nil), req.Destinations...),
		BandwidthMbps: req.BandwidthMbps,
		Chain:         chain,
	}
}

// Decode rebuilds the request.
func (r *RequestRecord) Decode() (*multicast.Request, error) {
	funcs := make([]nfv.Function, len(r.Chain))
	for i, name := range r.Chain {
		f, err := nfv.ParseFunction(name)
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", r.ID, err)
		}
		funcs[i] = f
	}
	chain, err := nfv.NewChain(funcs...)
	if err != nil {
		return nil, fmt.Errorf("request %d: %w", r.ID, err)
	}
	return &multicast.Request{
		ID:            r.ID,
		Source:        r.Source,
		Destinations:  append([]int(nil), r.Destinations...),
		BandwidthMbps: r.BandwidthMbps,
		Chain:         chain,
	}, nil
}

// encodeSolution converts a solution to its wire form.
func encodeSolution(sol *core.Solution) *SolutionRecord {
	hops := sol.Tree.Hops()
	hr := make([]HopRecord, len(hops))
	for i, h := range hops {
		hr[i] = HopRecord{From: h.From, To: h.To, Edge: h.Edge, Processed: h.Processed}
	}
	var segd []float64
	if sol.Tree.ServerDemands != nil {
		segd = append([]float64(nil), sol.Tree.ServerDemands...)
	}
	return &SolutionRecord{
		Servers:         append([]int(nil), sol.Servers...),
		ServerDemands:   segd,
		Hops:            hr,
		OperationalCost: sol.OperationalCost,
		SelectionCost:   sol.SelectionCost,
	}
}

// Decode rebuilds the solution realising req.
func (s *SolutionRecord) Decode(req *multicast.Request) *core.Solution {
	tree := multicast.NewPseudoTree(req.Source, req.Destinations, s.Servers)
	if len(s.ServerDemands) == len(s.Servers) && len(s.ServerDemands) > 0 {
		tree.ServerDemands = append([]float64(nil), s.ServerDemands...)
	}
	for _, h := range s.Hops {
		tree.AddHop(multicast.Hop{From: h.From, To: h.To, Edge: h.Edge, Processed: h.Processed})
	}
	return &core.Solution{
		Request:         req,
		Tree:            tree,
		Servers:         append([]int(nil), s.Servers...),
		OperationalCost: s.OperationalCost,
		SelectionCost:   s.SelectionCost,
	}
}

// encodeMutations converts a maintenance batch to its wire form.
func encodeMutations(muts []engine.Mutation) []MutationRecord {
	out := make([]MutationRecord, len(muts))
	for i, m := range muts {
		out[i] = MutationRecord{Kind: m.Kind.String(), ID: m.ID, Up: m.Up, Capacity: m.Capacity}
	}
	return out
}

// decodeMutations rebuilds a maintenance batch.
func decodeMutations(recs []MutationRecord) ([]engine.Mutation, error) {
	out := make([]engine.Mutation, len(recs))
	for i, r := range recs {
		kind, err := parseMutationKind(r.Kind)
		if err != nil {
			return nil, err
		}
		out[i] = engine.Mutation{Kind: kind, ID: r.ID, Up: r.Up, Capacity: r.Capacity}
	}
	return out, nil
}

// parseMutationKind is the inverse of engine.MutationKind.String.
func parseMutationKind(name string) (engine.MutationKind, error) {
	switch name {
	case engine.LinkState.String():
		return engine.LinkState, nil
	case engine.ServerState.String():
		return engine.ServerState, nil
	case engine.LinkCapacity.String():
		return engine.LinkCapacity, nil
	case engine.ServerCapacity.String():
		return engine.ServerCapacity, nil
	default:
		return 0, fmt.Errorf("unknown mutation kind %q", name)
	}
}

// The wire forms double as the daemon's HTTP/JSON vocabulary — one
// schema for what is logged, replayed, and served. These exported
// constructors are the non-log entry points.

// EncodeRequest converts a request to its wire form.
func EncodeRequest(req *multicast.Request) *RequestRecord { return encodeRequest(req) }

// EncodeSolution converts a solution to its wire form.
func EncodeSolution(sol *core.Solution) *SolutionRecord { return encodeSolution(sol) }

// EncodeMutations converts a maintenance batch to its wire form.
func EncodeMutations(muts []engine.Mutation) []MutationRecord { return encodeMutations(muts) }

// DecodeMutations rebuilds a maintenance batch from its wire form.
func DecodeMutations(recs []MutationRecord) ([]engine.Mutation, error) {
	return decodeMutations(recs)
}

// validate checks a decoded record's shape before replay applies it —
// a malformed payload that still passed its CRC (an encoder bug, or a
// hand-edited log) must fail recovery loudly, never half-apply.
func (r *Record) validate() error {
	switch r.Type {
	case obs.Admitted, obs.Repaired:
		if r.Req == nil || r.Sol == nil {
			return fmt.Errorf("%s record without req/sol payload", r.Type)
		}
	case obs.Departed, obs.Shed:
		if r.Req != nil || r.Sol != nil || r.Muts != nil {
			return fmt.Errorf("%s record with unexpected payload", r.Type)
		}
	case obs.MutationApplied:
		if len(r.Muts) == 0 {
			return fmt.Errorf("mutation_applied record without mutations")
		}
	default:
		return fmt.Errorf("unknown record type %q", r.Type)
	}
	return nil
}
