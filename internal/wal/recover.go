package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
)

// ReplayStats reports what one recovery pass did.
type ReplayStats struct {
	// SnapshotLSN is the LSN of the snapshot recovery started from (0
	// when the whole log was replayed from the beginning).
	SnapshotLSN uint64
	// SnapshotFingerprint is the state fingerprint the snapshot
	// recorded ("" without a snapshot).
	SnapshotFingerprint string
	// Records is how many log records were replayed after the
	// snapshot.
	Records int
	// LastLSN is the highest LSN recovered; subsequent appends
	// continue from it.
	LastLSN uint64
	// TailError is the typed framing error (ErrLogTruncated or
	// ErrLogCorrupt) of the torn tail Open cut off the newest segment,
	// nil for a cleanly-closed log. A torn tail is expected after a
	// crash — the cut records were never acked.
	TailError error
}

// Recover rebuilds eng from the log: the newest readable snapshot is
// installed (falling back to the previous one if the newest is
// damaged), then every record after it replays in LSN order. eng must
// be freshly built on the base topology — same substrate the original
// engine started from — with nothing admitted; replay restores logged
// outcomes verbatim and never plans. Damage anywhere but the (already
// cut) tail fails recovery with ErrLogCorrupt/ErrLogTruncated rather
// than skipping records.
//
// Recover is called after Open and before the engine takes traffic;
// the log then continues appending after the recovered LSN.
func (l *Log) Recover(eng *engine.Engine) (*ReplayStats, error) {
	stats := &ReplayStats{TailError: l.TailError()}

	// Pick the newest snapshot that reads back clean. A damaged
	// snapshot falls back to its predecessor (collect keeps one), for
	// which the record suffix is still on disk.
	snaps, err := l.snapshots()
	if err != nil {
		return nil, err
	}
	var snap *snapshotFile
	var snapErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		s, rerr := l.readSnapshot(snaps[i])
		if rerr == nil {
			snap = s
			break
		}
		if snapErr == nil {
			snapErr = rerr
		}
	}
	if snap != nil {
		if err := restoreSnapshot(eng, snap); err != nil {
			return nil, err
		}
		stats.SnapshotLSN = snap.LSN
		stats.SnapshotFingerprint = snap.Fingerprint
		stats.LastLSN = snap.LSN
	} else if snapErr != nil {
		// Every snapshot on disk is damaged. Full replay can still
		// save the day when the whole record chain survives.
		segs, serr := l.segments()
		if serr != nil {
			return nil, serr
		}
		if len(segs) == 0 || segs[0] != 1 {
			return nil, fmt.Errorf("wal: no readable snapshot and the log does not start at lsn 1: %w", snapErr)
		}
	}

	if err := l.replayRecords(eng, stats); err != nil {
		return nil, err
	}
	l.opts.Obs.Replayed(stats.Records, stats.TailError != nil)
	return stats, nil
}

// replayRecords applies every record with LSN > stats.LastLSN to eng.
func (l *Log) replayRecords(eng *engine.Engine, stats *ReplayStats) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	next := stats.LastLSN + 1
	for i, first := range segs {
		// Skip segments the snapshot fully covers.
		if i+1 < len(segs) && segs[i+1] <= next {
			continue
		}
		path := l.segmentPath(first)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("wal: read %s: %w", path, rerr)
		}
		lastSeg := i == len(segs)-1
		off := 0
		expect := first
		for off < len(data) {
			rec, nextOff, ferr := readFrame(data, off)
			if ferr != nil {
				if lastSeg {
					// Open already cut the torn tail off the segment
					// it appends to; hitting one here means the log
					// was damaged between Open and Recover, or Open
					// was bypassed. Either way the cut is safe — the
					// tail was never acked — but it is reported.
					if stats.TailError == nil {
						stats.TailError = fmt.Errorf("%s: %w", filepath.Base(path), ferr)
					}
					break
				}
				return fmt.Errorf("%s (mid-chain): %w", filepath.Base(path), ferr)
			}
			if rec.LSN != expect {
				return fmt.Errorf("%w: %s: record lsn %d where %d was expected",
					ErrLogCorrupt, filepath.Base(path), rec.LSN, expect)
			}
			expect++
			off = nextOff
			if rec.LSN < next {
				continue // record predates the snapshot
			}
			if rec.LSN != next {
				// Records between the snapshot and this segment were
				// collected or lost — applying across the hole would
				// diverge silently.
				return fmt.Errorf("%w: %s: record lsn %d leaves a gap after %d",
					ErrLogCorrupt, filepath.Base(path), rec.LSN, next-1)
			}
			if aerr := l.apply(eng, rec); aerr != nil {
				return aerr
			}
			stats.Records++
			stats.LastLSN = rec.LSN
			next = rec.LSN + 1
		}
	}
	return nil
}

// apply replays one record's outcome onto eng via the engine's
// Restore surface (no planning, no journaling, no recovery passes —
// the log already holds what those decided).
func (l *Log) apply(eng *engine.Engine, rec *Record) error {
	switch rec.Type {
	case obs.Admitted:
		req, err := rec.Req.Decode()
		if err != nil {
			return fmt.Errorf("%w: lsn %d: %v", ErrLogCorrupt, rec.LSN, err)
		}
		if err := eng.Restore(req, rec.Sol.Decode(req)); err != nil {
			return fmt.Errorf("wal: replay admit lsn=%d req=%d: %w", rec.LSN, req.ID, err)
		}
	case obs.Departed, obs.Shed:
		if err := eng.RestoreDrop(rec.Request); err != nil {
			return fmt.Errorf("wal: replay %s lsn=%d req=%d: %w", rec.Type, rec.LSN, rec.Request, err)
		}
	case obs.Repaired:
		req, err := rec.Req.Decode()
		if err != nil {
			return fmt.Errorf("%w: lsn %d: %v", ErrLogCorrupt, rec.LSN, err)
		}
		if err := eng.RestoreReplace(rec.Request, rec.Sol.Decode(req)); err != nil {
			return fmt.Errorf("wal: replay repair lsn=%d req=%d: %w", rec.LSN, rec.Request, err)
		}
	case obs.MutationApplied:
		muts, err := decodeMutations(rec.Muts)
		if err != nil {
			return fmt.Errorf("%w: lsn %d: %v", ErrLogCorrupt, rec.LSN, err)
		}
		if err := eng.RestoreApply(muts...); err != nil {
			return fmt.Errorf("wal: replay mutations lsn=%d: %w", rec.LSN, err)
		}
	default:
		// validate() in the codec rejects unknown types; reaching here
		// means the vocabulary grew without a replay arm.
		return fmt.Errorf("%w: lsn %d: unhandled record type %q", ErrLogCorrupt, rec.LSN, rec.Type)
	}
	return nil
}

// IsRecoverableTail reports whether err is a tail condition recovery
// tolerates (cut back to the last valid record) as opposed to
// mid-chain damage that fails it. Both classes carry the typed
// sentinels; this helper just documents the distinction for callers
// inspecting ReplayStats.TailError.
func IsRecoverableTail(err error) bool {
	return errors.Is(err, ErrLogTruncated) || errors.Is(err, ErrLogCorrupt)
}
