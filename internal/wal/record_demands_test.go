package wal

import (
	"reflect"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
)

// TestSolutionRecordServerDemandsRoundTrip pins the distributed-chain
// extension of the WAL schema: per-segment compute demands survive the
// encode/decode round trip position-aligned with the server tuple, and
// their absence (consolidated solutions, legacy logs) decodes to a nil
// slice so replay charges the full chain demand exactly as before.
func TestSolutionRecordServerDemandsRoundTrip(t *testing.T) {
	req := &multicast.Request{
		ID: 9, Source: 0, Destinations: []graph.NodeID{3, 5},
		BandwidthMbps: 50,
		Chain:         nfv.MustChain(nfv.NAT, nfv.Firewall),
	}
	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{2, 4})
	tree.ServerDemands = []float64{120, 330.5}
	sol := &core.Solution{Request: req, Tree: tree, Servers: tree.Servers}

	got := EncodeSolution(sol).Decode(req)
	if !reflect.DeepEqual(got.Tree.ServerDemands, tree.ServerDemands) {
		t.Fatalf("ServerDemands round trip = %v, want %v",
			got.Tree.ServerDemands, tree.ServerDemands)
	}

	// Consolidated solutions stay demand-less end to end.
	tree.ServerDemands = nil
	if got := EncodeSolution(sol).Decode(req); got.Tree.ServerDemands != nil {
		t.Fatalf("consolidated solution decoded demands %v, want nil", got.Tree.ServerDemands)
	}

	// A legacy/corrupt record whose demand count disagrees with the
	// server tuple must be ignored, not half-applied.
	rec := EncodeSolution(sol)
	rec.ServerDemands = []float64{1}
	if got := rec.Decode(req); got.Tree.ServerDemands != nil {
		t.Fatalf("mismatched demand count decoded as %v, want nil", got.Tree.ServerDemands)
	}
}
