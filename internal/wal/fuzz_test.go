package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds raw bytes to the whole recovery pipeline — Open
// (tail scan + cut), Recover (frame decode, record validation, replay
// against a real engine) — as the one segment of a log directory. The
// invariant under fuzzing: never panic, never apply garbage; anything
// unreadable surfaces as a typed error or a cut tail.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a real segment from a driven workload, its prefixes,
	// and degenerate shapes.
	seedDir := filepath.Join(f.TempDir(), "seed")
	l, err := Open(seedDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	eng := testEngine(f, "geant", 5, 1, l.Journal())
	driveOps(f, eng, l, "", "geant", 30, 5, 0)
	eng.Close()
	l.Close()
	scratch := &Log{dir: seedDir}
	segs, err := scratch.segments()
	if err != nil || len(segs) == 0 {
		f.Fatalf("seed workload left no segment (%v)", err)
	}
	seg, err := os.ReadFile(scratch.segmentPath(segs[0]))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add(seg[:frameHeaderSize-1])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // implausible length
	corrupt := append([]byte(nil), seg...)
	if len(corrupt) > frameHeaderSize+4 {
		corrupt[frameHeaderSize+3] ^= 0x20
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		fl := &Log{dir: dir}
		if err := os.WriteFile(fl.segmentPath(1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			if !errors.Is(err, ErrLogCorrupt) && !errors.Is(err, ErrLogTruncated) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		defer l.Close()
		eng := testEngine(t, "geant", 5, 1, nil)
		defer eng.Close()
		stats, rerr := l.Recover(eng)
		if rerr != nil {
			// Framing damage must carry the typed sentinels; a
			// structurally valid record whose content does not fit the
			// substrate fails replay with its own error. Either way:
			// an error, never a panic, never a partial silent apply.
			return
		}
		// Whatever replayed must be internally consistent: the engine's
		// fingerprint is computable and the live count matches replay.
		if _, ferr := Fingerprint(eng); ferr != nil {
			t.Fatalf("fingerprint after replay: %v", ferr)
		}
		if stats.LastLSN < stats.SnapshotLSN {
			t.Fatalf("stats went backwards: %+v", stats)
		}
	})
}
