package wal

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/sdn"
)

// State fingerprint: a SHA-256 over everything recovery promises to
// reconstruct — the live session table (requests, trees, costs) and
// the network's capacity/residual/failure state. Floats are rendered
// with strconv.FormatFloat(x, 'g', -1, 64) (shortest round-trip form),
// so two states fingerprint equal exactly when they are bit-identical.
// Deliberately excluded: lifecycle counters (admitted/rejected totals
// are history, reset by a restart), version counters (replay takes a
// different number of steps than the original run), and planner
// caches (derived state). The crash-recovery oracle's contract is
// Fingerprint(recovered) == Fingerprint(original-at-acked-prefix).

// Fingerprint captures the engine's durable state fingerprint
// atomically (no operation in flight — see engine.SnapshotState).
func Fingerprint(eng *engine.Engine) (string, error) {
	var fp string
	err := eng.SnapshotState(func(nw *sdn.Network, lives []*core.Solution) {
		fp = fingerprintOf(nw, lives)
	})
	return fp, err
}

// fingerprintOf hashes a captured (network, live table) pair. Callers
// must hold the state still (inside SnapshotState, or a test's own
// serialisation).
func fingerprintOf(nw *sdn.Network, lives []*core.Solution) string {
	h := sha256.New()
	writeString := func(parts ...string) {
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	writeFloat := func(f float64) {
		writeString(strconv.FormatFloat(f, 'g', -1, 64))
	}

	// Live sessions, ascending request ID (Lives() order).
	writeString("lives", strconv.Itoa(len(lives)))
	for _, sol := range lives {
		hashSolution(writeString, writeFloat, sol)
	}

	// Link state: capacity, residual, up-flag per edge in ID order.
	writeString("links", strconv.Itoa(nw.NumEdges()))
	for e := 0; e < nw.NumEdges(); e++ {
		writeFloat(nw.BandwidthCap(e))
		writeFloat(nw.ResidualBandwidth(e))
		writeString(strconv.FormatBool(nw.LinkUp(e)))
	}

	// Server state per attached server in node order.
	servers := append([]int(nil), nw.Servers()...)
	sort.Ints(servers)
	writeString("servers", strconv.Itoa(len(servers)))
	for _, v := range servers {
		writeString(strconv.Itoa(v))
		writeFloat(nw.ComputeCap(v))
		writeFloat(nw.ResidualCompute(v))
		writeString(strconv.FormatBool(nw.ServerUp(v)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashSolution folds one live session into the fingerprint: the
// request's identity and demand, the serving nodes, the tree's
// directed hops (sorted, so structurally equal trees hash equal
// regardless of construction order) and both costs.
func hashSolution(writeString func(...string), writeFloat func(float64), sol *core.Solution) {
	req := sol.Request
	writeString("req", strconv.Itoa(req.ID), strconv.Itoa(req.Source))
	writeString(strconv.Itoa(len(req.Destinations)))
	for _, d := range req.Destinations {
		writeString(strconv.Itoa(d))
	}
	writeFloat(req.BandwidthMbps)
	writeString(req.Chain.String())

	writeString("servers", strconv.Itoa(len(sol.Servers)))
	for _, v := range sol.Servers {
		writeString(strconv.Itoa(v))
	}

	hops := sol.Tree.Hops()
	sort.Slice(hops, func(i, j int) bool {
		a, b := hops[i], hops[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		return !a.Processed && b.Processed
	})
	writeString("hops", strconv.Itoa(len(hops)))
	for _, hp := range hops {
		writeString(strconv.Itoa(hp.From), strconv.Itoa(hp.To),
			strconv.Itoa(hp.Edge), strconv.FormatBool(hp.Processed))
	}
	writeFloat(sol.OperationalCost)
	writeFloat(sol.SelectionCost)
}
