package trace

import (
	"strings"
	"testing"
)

// FuzzReadWorkload ensures arbitrary input never panics the decoder
// and that anything it accepts decodes into valid requests.
func FuzzReadWorkload(f *testing.F) {
	f.Add(`{"version":1,"nodes":5,"requests":[]}`)
	f.Add(`{"version":1,"nodes":5,"requests":[{"id":1,"source":0,` +
		`"destinations":[1],"bandwidthMbps":10,"chain":["NAT"]}]}`)
	f.Add(`{"version":99}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"nodes":-3,"requests":[{"id":1,"source":9,` +
		`"destinations":[1,1],"bandwidthMbps":-5,"chain":["Bogus"]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		w, err := ReadWorkload(strings.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		reqs, err := w.Decode()
		if err != nil {
			return
		}
		for i, r := range reqs {
			if err := r.Validate(w.Nodes); err != nil {
				t.Fatalf("decoded request %d invalid: %v", i, err)
			}
		}
	})
}
