package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sim"
)

func sampleRequests(t *testing.T, n, count int) []*multicast.Request {
	t.Helper()
	gen, err := multicast.NewGenerator(n, multicast.DefaultGeneratorConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := gen.Batch(count)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestWorkloadRoundtrip(t *testing.T) {
	reqs := sampleRequests(t, 40, 25)
	w := NewWorkload("waxman-40", 40, 5, reqs)
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		a, b := reqs[i], got[i]
		if a.ID != b.ID || a.Source != b.Source || a.BandwidthMbps != b.BandwidthMbps {
			t.Fatalf("request %d scalar mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Destinations) != len(b.Destinations) {
			t.Fatalf("request %d destinations differ", i)
		}
		for j := range a.Destinations {
			if a.Destinations[j] != b.Destinations[j] {
				t.Fatalf("request %d destination %d differs", i, j)
			}
		}
		if !a.Chain.Equal(b.Chain) {
			t.Fatalf("request %d chain %v != %v", i, a.Chain, b.Chain)
		}
	}
}

func TestWorkloadFileRoundtrip(t *testing.T) {
	reqs := sampleRequests(t, 30, 10)
	w := NewWorkload("geant", 30, 1, reqs)
	path := filepath.Join(t.TempDir(), "workload.json")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorkloadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topology != "geant" || back.Nodes != 30 || back.Seed != 1 {
		t.Fatalf("provenance lost: %+v", back)
	}
	if _, err := back.Decode(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadDecodeErrors(t *testing.T) {
	reqs := sampleRequests(t, 40, 2)
	w := NewWorkload("x", 40, 0, reqs)
	w.Version = 99
	if _, err := w.Decode(); err == nil {
		t.Fatal("wrong version accepted")
	}
	w = NewWorkload("x", 40, 0, reqs)
	w.Requests[0].Chain = []string{"Quantumizer"}
	if _, err := w.Decode(); err == nil {
		t.Fatal("unknown function accepted")
	}
	w = NewWorkload("x", 40, 0, reqs)
	w.Nodes = 2 // now destinations are out of range
	if _, err := w.Decode(); err == nil {
		t.Fatal("out-of-range request accepted")
	}
	if _, err := ReadWorkload(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestResultsRoundtrip(t *testing.T) {
	figs := []sim.Figure{{
		ID:     "Fig9(a)",
		Title:  "t",
		XLabel: "x",
		X:      []float64{1, 2},
		YLabel: "y",
		Series: []sim.Series{{Label: "Online_CP", Y: []float64{3, 4}}},
	}}
	cfg := sim.DefaultConfig()
	r := NewResults("fig9", cfg, figs)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "fig9" || back.Seed != cfg.Seed || back.K != cfg.K {
		t.Fatalf("provenance lost: %+v", back)
	}
	if len(back.Figures) != 1 || back.Figures[0].Series[0].Y[1] != 4 {
		t.Fatalf("figures lost: %+v", back.Figures)
	}
	if _, err := ReadResults(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := ReadResults(strings.NewReader("nope")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestWriteFileErrors(t *testing.T) {
	w := NewWorkload("x", 10, 0, nil)
	if err := w.WriteFile("/nonexistent-dir/sub/file.json"); err == nil {
		t.Fatal("write into missing directory accepted")
	}
	if _, err := ReadWorkloadFile("/nonexistent-dir/file.json"); err == nil {
		t.Fatal("read of missing file accepted")
	}
}
