// Package trace persists workloads and experiment results as JSON so
// runs can be archived, diffed and replayed: a request trace saved
// from one machine reproduces bit-identical admission decisions on
// another.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sim"
)

// FormatVersion identifies the trace schema; bump on breaking change.
const FormatVersion = 1

// requestJSON is the serialised form of one request. Chains serialise
// as ordered function names so traces stay readable and stable across
// internal renumbering.
type requestJSON struct {
	ID            int      `json:"id"`
	Source        int      `json:"source"`
	Destinations  []int    `json:"destinations"`
	BandwidthMbps float64  `json:"bandwidthMbps"`
	Chain         []string `json:"chain"`
}

// Workload is a serialisable request sequence plus provenance.
type Workload struct {
	Version  int           `json:"version"`
	Topology string        `json:"topology,omitempty"`
	Nodes    int           `json:"nodes"`
	Seed     int64         `json:"seed,omitempty"`
	Requests []requestJSON `json:"requests"`
}

// functionByName maps serialised names back to function values.
var functionByName = func() map[string]nfv.Function {
	m := make(map[string]nfv.Function)
	for _, f := range nfv.AllFunctions() {
		m[f.String()] = f
	}
	return m
}()

// NewWorkload wraps a request sequence for serialisation.
func NewWorkload(topology string, nodes int, seed int64, reqs []*multicast.Request) *Workload {
	w := &Workload{
		Version:  FormatVersion,
		Topology: topology,
		Nodes:    nodes,
		Seed:     seed,
		Requests: make([]requestJSON, 0, len(reqs)),
	}
	for _, r := range reqs {
		chain := make([]string, 0, r.Chain.Len())
		for _, f := range r.Chain.Functions() {
			chain = append(chain, f.String())
		}
		w.Requests = append(w.Requests, requestJSON{
			ID:            r.ID,
			Source:        r.Source,
			Destinations:  append([]int(nil), r.Destinations...),
			BandwidthMbps: r.BandwidthMbps,
			Chain:         chain,
		})
	}
	return w
}

// Decode reconstructs the request sequence, validating every entry
// against the recorded node count.
func (w *Workload) Decode() ([]*multicast.Request, error) {
	if w.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", w.Version, FormatVersion)
	}
	out := make([]*multicast.Request, 0, len(w.Requests))
	for i, rj := range w.Requests {
		funcs := make([]nfv.Function, 0, len(rj.Chain))
		for _, name := range rj.Chain {
			f, ok := functionByName[name]
			if !ok {
				return nil, fmt.Errorf("trace: request %d: unknown function %q", i, name)
			}
			funcs = append(funcs, f)
		}
		chain, err := nfv.NewChain(funcs...)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		req := &multicast.Request{
			ID:            rj.ID,
			Source:        rj.Source,
			Destinations:  append([]int(nil), rj.Destinations...),
			BandwidthMbps: rj.BandwidthMbps,
			Chain:         chain,
		}
		if err := req.Validate(w.Nodes); err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		out = append(out, req)
	}
	return out, nil
}

// Write serialises the workload as indented JSON.
func (w *Workload) Write(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// WriteFile serialises the workload to a file.
func (w *Workload) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.Write(f); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadWorkload parses a workload from JSON.
func ReadWorkload(in io.Reader) (*Workload, error) {
	var w Workload
	dec := json.NewDecoder(in)
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("trace: decode workload: %w", err)
	}
	return &w, nil
}

// ReadWorkloadFile parses a workload from a file.
func ReadWorkloadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWorkload(f)
}

// Results is a serialisable set of experiment figures.
type Results struct {
	Version    int          `json:"version"`
	Experiment string       `json:"experiment"`
	Requests   int          `json:"requests"`
	Seed       int64        `json:"seed"`
	K          int          `json:"k"`
	Figures    []sim.Figure `json:"figures"`
}

// NewResults wraps experiment output for serialisation.
func NewResults(experiment string, cfg sim.Config, figs []sim.Figure) *Results {
	return &Results{
		Version:    FormatVersion,
		Experiment: experiment,
		Requests:   cfg.Requests,
		Seed:       cfg.Seed,
		K:          cfg.K,
		Figures:    figs,
	}
}

// Write serialises the results as indented JSON.
func (r *Results) Write(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadResults parses results from JSON.
func ReadResults(in io.Reader) (*Results, error) {
	var r Results
	if err := json.NewDecoder(in).Decode(&r); err != nil {
		return nil, fmt.Errorf("trace: decode results: %w", err)
	}
	if r.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", r.Version, FormatVersion)
	}
	return &r, nil
}
