// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance (Welford), summaries,
// percentiles and normal-approximation confidence intervals.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is
// requested.
var ErrEmpty = errors.New("stats: empty sample")

// Accumulator computes streaming mean and variance with Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean (0 for an empty sample).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev reports the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest observation (0 for an empty sample).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation (0 for an empty sample).
func (a *Accumulator) Max() float64 { return a.max }

// Summary is a fixed snapshot of a sample's statistics.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return Summary{
		N:      acc.N(),
		Mean:   acc.Mean(),
		Stddev: acc.Stddev(),
		Min:    acc.Min(),
		Max:    acc.Max(),
	}, nil
}

// String renders the summary as "mean ± stddev [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g [%.4g, %.4g] (n=%d)", s.Mean, s.Stddev, s.Min, s.Max, s.N)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CI95HalfWidth returns the half-width of a 95% confidence interval
// for the mean under the normal approximation (1.96·s/√n). For n < 2
// it returns 0.
func CI95HalfWidth(s Summary) float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}
