package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic sample is 4; unbiased
	// sample variance is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorSmallSamples(t *testing.T) {
	var a Accumulator
	if a.Variance() != 0 || a.Stddev() != 0 || a.Mean() != 0 {
		t.Fatal("zero-value accumulator should report zeros")
	}
	a.Add(3)
	if a.Variance() != 0 {
		t.Fatalf("variance of single sample = %v, want 0", a.Variance())
	}
	if a.Mean() != 3 || a.Min() != 3 || a.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty summarize = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty percentile accepted")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 accepted")
	}
	one, err := Percentile([]float64{7}, 90)
	if err != nil || one != 7 {
		t.Fatalf("single-sample percentile = (%v, %v)", one, err)
	}
	// Input must not be mutated (sorted copy).
	orig := []float64{3, 1, 2}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCI95(t *testing.T) {
	s, err := Summarize([]float64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := CI95HalfWidth(s); got != 0 {
		t.Fatalf("CI of constant sample = %v, want 0", got)
	}
	s2 := Summary{N: 1, Stddev: 5}
	if CI95HalfWidth(s2) != 0 {
		t.Fatal("CI of single sample should be 0")
	}
	s3 := Summary{N: 100, Stddev: 10}
	want := 1.96 * 10 / 10
	if math.Abs(CI95HalfWidth(s3)-want) > 1e-12 {
		t.Fatalf("CI = %v, want %v", CI95HalfWidth(s3), want)
	}
}

func TestPropertyAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 10
			acc.Add(xs[i])
		}
		// Two-pass reference.
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(acc.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(acc.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		return p0 == s.Min && p100 == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
