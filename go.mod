module nfvmcast

go 1.22
