package nfvmcast

// One benchmark per reproduced table/figure (see DESIGN.md §3), plus
// substrate and ablation benches. Figure benchmarks measure the
// figure's unit of work: a single request solve for the offline
// figures (Figs. 5-7) and a full admission sequence for the online
// figures (Figs. 8-9). Regenerate the actual figures with
// `go run ./cmd/nfvsim -experiment all`.

import (
	"fmt"
	"math/rand"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// benchNetwork builds the evaluation network for benchmarks.
func benchNetwork(b *testing.B, name string, n int, seed int64) *sdn.Network {
	b.Helper()
	var (
		topo *topology.Topology
		err  error
	)
	switch name {
	case "waxman":
		topo, err = topology.WaxmanDegree(n, topology.DefaultAvgDegree, 0.14, seed)
	case "geant":
		topo = topology.GEANT()
	case "as1755":
		topo = topology.AS1755()
	}
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// benchRequests pre-draws a request pool so generation cost stays out
// of the measured loop.
func benchRequests(b *testing.B, n int, ratio float64, count int, seed int64) []*multicast.Request {
	b.Helper()
	cfg := multicast.DefaultGeneratorConfig()
	cfg.DestRatio = ratio
	gen, err := multicast.NewGenerator(n, cfg, seed)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := gen.Batch(count)
	if err != nil {
		b.Fatal(err)
	}
	return reqs
}

// benchOffline measures one offline algorithm at one figure point.
func benchOffline(b *testing.B, topoName string, n int, ratio float64,
	solve func(*sdn.Network, *multicast.Request) (*core.Solution, error)) {
	b.Helper()
	nw := benchNetwork(b, topoName, n, 42)
	reqs := benchRequests(b, nw.NumNodes(), ratio, 64, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve(nw, reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: Appro_Multi vs one-server baselines, random networks ---

func BenchmarkFig5ApproMultiN50(b *testing.B) {
	benchOffline(b, "waxman", 50, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkFig5ApproMultiN150(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkFig5ApproMultiN250(b *testing.B) {
	benchOffline(b, "waxman", 250, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkFig5OneServerN150(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.AlgOneServer(nw, r, false)
	})
}

func BenchmarkFig5OneServerNearestN150(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.AlgOneServerNearest(nw, r, false)
	})
}

// --- Figure 6: real topologies ---

func BenchmarkFig6GEANTApproMulti(b *testing.B) {
	benchOffline(b, "geant", 0, 0.15, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkFig6GEANTOneServer(b *testing.B) {
	benchOffline(b, "geant", 0, 0.15, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.AlgOneServer(nw, r, false)
	})
}

func BenchmarkFig6AS1755ApproMulti(b *testing.B) {
	benchOffline(b, "as1755", 0, 0.15, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkFig6AS1755OneServer(b *testing.B) {
	benchOffline(b, "as1755", 0, 0.15, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.AlgOneServer(nw, r, false)
	})
}

// --- Figure 7: capacity-constrained variant ---

func BenchmarkFig7ApproMultiCapN150(b *testing.B) {
	nw := benchNetwork(b, "waxman", 150, 42)
	reqs := benchRequests(b, nw.NumNodes(), 0.20, 64, 7)
	snap := nw.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%len(reqs)]
		sol, err := core.ApproMulti(nw, req, core.Options{K: 3, Capacitated: true})
		if err != nil {
			b.Fatal(err)
		}
		// Allocate to exercise the residual bookkeeping, restoring
		// periodically so the network never saturates mid-benchmark.
		if err := nw.Allocate(core.AllocationFor(req, sol.Tree)); err != nil {
			if rerr := nw.Restore(snap); rerr != nil {
				b.Fatal(rerr)
			}
		}
		if (i+1)%32 == 0 {
			if err := nw.Restore(snap); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figures 8-9: online admission sequences ---

// benchOnline measures a full admission sequence (the online figures'
// unit of work) for one admitter constructor.
func benchOnline(b *testing.B, topoName string, n, requests int,
	newAdmitter func(*sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error)) {
	b.Helper()
	base := benchNetwork(b, topoName, n, 42)
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 7)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := gen.Batch(requests)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw := base.Clone()
		adm, err := newAdmitter(nw)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, r := range reqs {
			if _, err := adm.Admit(r); err != nil && !core.IsRejection(err) {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig8OnlineCPN100(b *testing.B) {
	benchOnline(b, "waxman", 100, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	})
}

func BenchmarkFig8OnlineSPN100(b *testing.B) {
	benchOnline(b, "waxman", 100, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineSP(nw), nil
	})
}

func BenchmarkFig8OnlineSPStaticN100(b *testing.B) {
	benchOnline(b, "waxman", 100, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineSPStatic(nw), nil
	})
}

func BenchmarkFig9GEANTOnlineCP(b *testing.B) {
	benchOnline(b, "geant", 0, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	})
}

func BenchmarkFig9AS1755OnlineCP(b *testing.B) {
	benchOnline(b, "as1755", 0, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	})
}

// --- Parallel subset evaluation (DESIGN.md §8) ---

// BenchmarkApproMultiParallel measures Options.Workers scaling of the
// candidate-evaluation pool on the GÉANT / K=3 workload. Before
// timing, every sub-benchmark asserts the parallel solution is
// identical to the sequential reference, so a speedup can never come
// from solving a different problem. The recorded baseline lives in
// results/BENCH_appromulti.json; regenerate it with
//
//	go test -run '^$' -bench BenchmarkApproMultiParallel -benchtime 2s .
func BenchmarkApproMultiParallel(b *testing.B) {
	nw := benchNetwork(b, "geant", 0, 42)
	reqs := benchRequests(b, nw.NumNodes(), 0.15, 16, 7)
	refs := make([]*core.Solution, len(reqs))
	for i, r := range reqs {
		ref, err := core.ApproMulti(nw, r, core.Options{K: 3, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i, r := range reqs {
				sol, err := core.ApproMulti(nw, r, core.Options{K: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if sol.OperationalCost != refs[i].OperationalCost ||
					sol.SelectionCost != refs[i].SelectionCost {
					b.Fatalf("request %d: workers=%d solution (%v, %v) differs from sequential (%v, %v)",
						i, workers, sol.OperationalCost, sol.SelectionCost,
						refs[i].OperationalCost, refs[i].SelectionCost)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.ApproMulti(nw, reqs[i%len(reqs)], core.Options{K: 3, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

func BenchmarkAblationK1(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 1})
	})
}

func BenchmarkAblationK2(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 2})
	})
}

func BenchmarkAblationK3(b *testing.B) {
	benchOffline(b, "waxman", 150, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 3})
	})
}

func BenchmarkAblationEvaluatorClosure(b *testing.B) {
	benchOffline(b, "waxman", 50, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 2})
	})
}

func BenchmarkAblationEvaluatorExplicit(b *testing.B) {
	benchOffline(b, "waxman", 50, 0.10, func(nw *sdn.Network, r *multicast.Request) (*core.Solution, error) {
		return core.ApproMulti(nw, r, core.Options{K: 2, ExplicitAuxiliary: true})
	})
}

// --- Substrate benchmarks ---

func BenchmarkSubstrateDijkstraN250(b *testing.B) {
	nw := benchNetwork(b, "waxman", 250, 42)
	g := nw.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Dijkstra(g, i%g.NumNodes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateSteinerKMB(b *testing.B) {
	nw := benchNetwork(b, "waxman", 250, 42)
	g := nw.Graph()
	rng := rand.New(rand.NewSource(5))
	terminalSets := make([][]graph.NodeID, 16)
	for i := range terminalSets {
		terminalSets[i] = rng.Perm(g.NumNodes())[:12]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.SteinerKMB(g, terminalSets[i%len(terminalSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateControllerInstall(b *testing.B) {
	nw := benchNetwork(b, "waxman", 100, 42)
	reqs := benchRequests(b, nw.NumNodes(), 0.15, 32, 7)
	sols := make([]*core.Solution, len(reqs))
	for i, r := range reqs {
		sol, err := core.ApproMulti(nw, r, core.Options{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		sols[i] = sol
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl := sdn.NewController(nw)
		j := i % len(reqs)
		if err := ctrl.Install(reqs[j], sols[j].Tree); err != nil {
			b.Fatal(err)
		}
		if err := ctrl.VerifyDelivery(reqs[j].ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateTopologyWaxman(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.WaxmanDegree(150, topology.DefaultAvgDegree, 0.14, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks ---

func BenchmarkExtOnlineCPK2N100(b *testing.B) {
	benchOnline(b, "waxman", 100, 100, func(nw *sdn.Network) (interface {
		Admit(*multicast.Request) (*core.Solution, error)
	}, error) {
		return core.NewOnlineCPK(nw, core.DefaultCostModel(nw.NumNodes()), 2)
	})
}

func BenchmarkExtReoptimize(b *testing.B) {
	base := benchNetwork(b, "waxman", 100, 42)
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 7)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := gen.Batch(60)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw := base.Clone()
		sp := core.NewOnlineSP(nw)
		var sessions []*core.Solution
		for _, r := range reqs {
			if sol, err := sp.Admit(r); err == nil {
				sessions = append(sessions, sol)
			}
		}
		b.StartTimer()
		if _, _, _, err := core.Reoptimize(nw, sessions, core.Options{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateBridges(b *testing.B) {
	nw := benchNetwork(b, "waxman", 250, 42)
	g := nw.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := graph.Bridges(g); len(got) < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkSubstrateExactSteiner(b *testing.B) {
	nw := benchNetwork(b, "waxman", 40, 42)
	g := nw.Graph()
	rng := rand.New(rand.NewSource(5))
	terminalSets := make([][]graph.NodeID, 8)
	for i := range terminalSets {
		terminalSets[i] = rng.Perm(g.NumNodes())[:6]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.SteinerExactWeight(g, terminalSets[i%len(terminalSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateFatTree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.FatTree(8, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateDeliveryDepths(b *testing.B) {
	nw := benchNetwork(b, "waxman", 150, 42)
	reqs := benchRequests(b, nw.NumNodes(), 0.15, 16, 7)
	trees := make([]*multicast.PseudoTree, len(reqs))
	for i, r := range reqs {
		sol, err := core.ApproMulti(nw, r, core.Options{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		trees[i] = sol.Tree
	}
	g := nw.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trees[i%len(trees)].DeliveryDepths(g); err != nil {
			b.Fatal(err)
		}
	}
}
