// Command nfvmcast solves one NFV-enabled multicast request on a
// chosen topology and prints the resulting pseudo-multicast tree.
//
// Usage:
//
//	nfvmcast -topology geant -source 17 -dest 1,5,30 -bw 100 \
//	         -chain NAT,Firewall,IDS -k 3 [-algorithm appro|oneserver|nearest|onlinecp]
//	nfvmcast -topology waxman -nodes 100 -seed 7 -source 0 -dest 10,20,30
//
// Output lists the serving node(s), the operational cost, and every
// directed hop of the routing graph (with PoP names when the topology
// provides them), then verifies delivery by packet replay.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"nfvmcast"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfvmcast:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nfvmcast", flag.ContinueOnError)
	var (
		topoName    = fs.String("topology", "geant", "topology: geant | as1755 | as4755 | waxman | fattree")
		nodes       = fs.Int("nodes", 100, "network size (waxman only)")
		seed        = fs.Int64("seed", 42, "random seed for capacities/costs/servers")
		source      = fs.Int("source", 0, "source switch")
		destsFlag   = fs.String("dest", "", "comma-separated destination switches (required)")
		bw          = fs.Float64("bw", 100, "bandwidth demand in Mbps")
		chainFlag   = fs.String("chain", "NAT,Firewall", "comma-separated service chain")
		k           = fs.Int("k", 3, "server budget K")
		workers     = fs.Int("workers", -1, "concurrent subset evaluations for appro (-1 = all CPUs, 0/1 = sequential)")
		algorithm   = fs.String("algorithm", "appro", "appro | oneserver | nearest | any registry planner (\"help\" lists them; onlinecp = Online_CP)")
		shards      = fs.Int("shards", 0, "route admission through a shard router over this many identical substrate replicas (engine planners only; 0 = direct engine)")
		tenant      = fs.String("tenant", "default", "tenant key for shard routing (rendezvous-hashed to a shard; only with -shards)")
		dotPath     = fs.String("dot", "", "write the routing graph as Graphviz DOT to this file")
		metricsAddr = fs.String("metrics-addr", "", "after solving, serve metrics over HTTP at this address until interrupted (/metrics Prometheus text, /metrics.json, /debug/pprof/)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *algorithm == "help" {
		printAlgorithms(os.Stdout)
		return nil
	}
	if *destsFlag == "" {
		fs.Usage()
		return fmt.Errorf("missing -dest")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 0", *shards)
	}
	regName, isEngineAlg := registryName(*algorithm)
	if *shards > 0 && !isEngineAlg {
		return fmt.Errorf("-shards requires an engine planner (e.g. -algorithm onlinecp; admission routing is an online-engine feature)")
	}

	topo, err := buildTopology(*topoName, *nodes, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		return err
	}

	dests, err := parseInts(*destsFlag)
	if err != nil {
		return fmt.Errorf("-dest: %w", err)
	}
	chain, err := parseChain(*chainFlag)
	if err != nil {
		return fmt.Errorf("-chain: %w", err)
	}
	req := &nfvmcast.Request{
		ID:            1,
		Source:        *source,
		Destinations:  dests,
		BandwidthMbps: *bw,
		Chain:         chain,
	}

	// Optional observability: the engine path reports its admission
	// lifecycle into the registry, and the network gauges export
	// residual utilisation plus exponential weight saturation.
	model := nfvmcast.DefaultCostModel(nw.NumNodes())
	var (
		metrics *nfvmcast.MetricsRegistry
		gauges  *nfvmcast.NetworkGauges
	)
	if *metricsAddr != "" {
		metrics = nfvmcast.NewMetricsRegistry()
		gauges = nfvmcast.NewNetworkGauges(metrics, nw, nfvmcast.SaturationModel{
			Alpha: model.Alpha, Beta: model.Beta,
			SigmaV: model.SigmaV, SigmaE: model.SigmaE,
		})
	}

	// Admission via the engine allocates resources as part of Admit;
	// the other algorithms only plan, so the verification step below
	// allocates manually for them.
	allocated := false
	var sol *nfvmcast.Solution
	switch {
	case *algorithm == "appro":
		sol, err = nfvmcast.ApproMulti(nw, req, nfvmcast.Options{K: *k, Workers: *workers})
	case *algorithm == "oneserver":
		sol, err = nfvmcast.AlgOneServer(nw, req, false)
	case *algorithm == "nearest":
		sol, err = nfvmcast.AlgOneServerNearest(nw, req, false)
	case isEngineAlg:
		if *shards > 0 {
			// Shard-routed admission: every shard owns an identical
			// replica of the substrate (same topology, seed-identical
			// capacities); the tenant key picks the owning shard by
			// rendezvous hash and the session lands on that shard's
			// network for the verification below.
			ids := make([]string, *shards)
			for i := range ids {
				ids[i] = fmt.Sprintf("s%d", i)
			}
			var router *nfvmcast.ShardRouter
			router, err = nfvmcast.NewShardRouter(nfvmcast.ShardOptions{
				Shards: ids,
				Build: func(string) (*nfvmcast.Network, nfvmcast.Planner, error) {
					snw, berr := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(),
						rand.New(rand.NewSource(*seed+1)))
					if berr != nil {
						return nil, nil, berr
					}
					planner, berr := nfvmcast.NewPlanner(regName,
						nfvmcast.PlannerOptions{Nodes: snw.NumNodes()})
					return snw, planner, berr
				},
			})
			if err != nil {
				return err
			}
			defer router.Close()
			sol, err = router.Admit(*tenant, req)
			if err == nil {
				owner := router.Owner(req.ID)
				fmt.Printf("tenant %q routed to shard %s of %d\n", *tenant, owner, *shards)
				nw = router.Network(owner)
			}
			allocated = err == nil
			break
		}
		var planner nfvmcast.Planner
		planner, err = nfvmcast.NewPlanner(regName, nfvmcast.PlannerOptions{Nodes: nw.NumNodes()})
		if err != nil {
			return err
		}
		var opts []nfvmcast.EngineOption
		if metrics != nil {
			opts = append(opts, nfvmcast.WithMetrics(nfvmcast.NewAdmissionObs(
				metrics, planner.Name(),
				nfvmcast.AdmissionObsOptions{SampleLatency: true})))
		}
		eng := nfvmcast.NewEngine(nw, planner, opts...)
		defer eng.Close()
		sol, err = eng.Admit(req)
		allocated = err == nil
	default:
		return fmt.Errorf("unknown algorithm %q (run -algorithm help for the table)", *algorithm)
	}
	if err != nil {
		return err
	}

	name := func(v nfvmcast.NodeID) string {
		if len(topo.NodeNames) > 0 {
			return topo.NodeNames[v]
		}
		return strconv.Itoa(v)
	}
	fmt.Printf("topology %s: %d switches, %d links, servers %v\n",
		topo.Name, nw.NumNodes(), nw.NumEdges(), nw.Servers())
	fmt.Printf("request: %s -> %s, %.0f Mbps, chain %v\n",
		name(req.Source), nameList(req.Destinations, name), req.BandwidthMbps, req.Chain)
	fmt.Printf("algorithm %s (K=%d): operational cost %.2f\n", *algorithm, *k, sol.OperationalCost)
	fmt.Printf("service chain placed on: %s\n\n", nameList(sol.Servers, name))

	hops := sol.Tree.Hops()
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Processed != hops[j].Processed {
			return !hops[i].Processed
		}
		if hops[i].From != hops[j].From {
			return hops[i].From < hops[j].From
		}
		return hops[i].To < hops[j].To
	})
	fmt.Println("routing graph (directed hops):")
	for _, h := range hops {
		stage := "unprocessed"
		if h.Processed {
			stage = "processed  "
		}
		fmt.Printf("  [%s] %s -> %s\n", stage, name(h.From), name(h.To))
	}

	if *dotPath != "" {
		f, ferr := os.Create(*dotPath)
		if ferr != nil {
			return ferr
		}
		werr := nfvmcast.WriteTreeDOT(f, nw, topo.NodeNames, sol.Tree)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write %s: %w", *dotPath, werr)
		}
		fmt.Printf("\nrouting graph written to %s\n", *dotPath)
	}

	// Verify end to end on a controller.
	if !allocated {
		if err := nw.Allocate(nfvmcast.AllocationFor(req, sol.Tree)); err != nil {
			return fmt.Errorf("allocate: %w", err)
		}
	}
	ctrl := nfvmcast.NewController(nw)
	if err := ctrl.Install(req, sol.Tree); err != nil {
		return err
	}
	if err := ctrl.VerifyDelivery(req.ID); err != nil {
		return err
	}
	fmt.Println("\npacket replay: all destinations received service-chained traffic ✔")

	if metrics != nil {
		gauges.Collect(nw)
		addr, stop, serr := nfvmcast.ServeMetrics(*metricsAddr, func() *nfvmcast.MetricsRegistry { return metrics }, nil)
		if serr != nil {
			return serr
		}
		defer stop()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		fmt.Printf("\nmetrics: http://%s/metrics (also /metrics.json, /debug/pprof/) — ctrl-c to exit\n", addr)
		<-sig
	}
	return nil
}

// registryName maps the -algorithm flag to a planner-registry name,
// keeping the historical lowercase alias, and reports whether it
// resolves to an engine-path planner.
func registryName(alg string) (string, bool) {
	if alg == "onlinecp" {
		alg = "Online_CP"
	}
	_, ok := nfvmcast.LookupPlanner(alg)
	return alg, ok
}

// printAlgorithms writes the -algorithm table: the offline one-shot
// solvers plus every planner in the policy registry.
func printAlgorithms(w io.Writer) {
	fmt.Fprintln(w, "offline algorithms (one-shot solve, no admission state):")
	fmt.Fprintln(w, "  appro      Appro_Multi: the paper's 2K-approximation over server subsets (-k budget)")
	fmt.Fprintln(w, "  oneserver  baseline: best single consolidated server")
	fmt.Fprintln(w, "  nearest    baseline: closest eligible server to the source")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "engine planners (admission through the online engine; registry names):")
	specs := nfvmcast.Planners()
	width := 0
	for _, s := range specs {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range specs {
		fmt.Fprintf(w, "  %-*s  %s\n", width, s.Name, s.Description)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "alias: onlinecp = Online_CP")
}

func buildTopology(name string, n int, seed int64) (*nfvmcast.Topology, error) {
	switch name {
	case "geant":
		return nfvmcast.GEANT(), nil
	case "as1755":
		return nfvmcast.AS1755(), nil
	case "as4755":
		return nfvmcast.AS4755(), nil
	case "waxman":
		return nfvmcast.WaxmanDegree(n, nfvmcast.DefaultAvgDegree, 0.14, seed)
	case "fattree":
		return nfvmcast.FatTree(8, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseChain(s string) (nfvmcast.Chain, error) {
	byName := map[string]nfvmcast.Function{
		"firewall":     nfvmcast.Firewall,
		"proxy":        nfvmcast.Proxy,
		"nat":          nfvmcast.NAT,
		"ids":          nfvmcast.IDS,
		"loadbalancer": nfvmcast.LoadBalancer,
		"lb":           nfvmcast.LoadBalancer,
	}
	var funcs []nfvmcast.Function
	for _, p := range strings.Split(s, ",") {
		f, ok := byName[strings.ToLower(strings.TrimSpace(p))]
		if !ok {
			return nfvmcast.Chain{}, fmt.Errorf("unknown function %q", p)
		}
		funcs = append(funcs, f)
	}
	return nfvmcast.NewChain(funcs...)
}

func nameList(vs []nfvmcast.NodeID, name func(nfvmcast.NodeID) string) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = name(v)
	}
	return strings.Join(parts, ", ")
}
