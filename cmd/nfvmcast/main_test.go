package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvmcast"
)

func TestRunGEANT(t *testing.T) {
	err := run([]string{
		"-topology", "geant", "-source", "17", "-dest", "1,5,30",
		"-chain", "NAT,Firewall",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWaxmanAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"appro", "oneserver", "nearest"} {
		err := run([]string{
			"-topology", "waxman", "-nodes", "40", "-seed", "3",
			"-source", "0", "-dest", "5,9", "-algorithm", alg, "-k", "2",
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing -dest
		{"-dest", "1", "-topology", "x"},  // unknown topology
		{"-dest", "1,banana"},             // bad destination list
		{"-dest", "1", "-chain", "Bogus"}, // unknown function
		{"-dest", "1", "-algorithm", "magic"},
		{"-dest", "999"}, // destination out of range on GEANT
		{"-nonsense-flag"},
		{"-dest", "1", "-shards", "-1"}, // negative shard count
		{"-dest", "1", "-shards", "2", "-algorithm", "appro"}, // sharding is engine-only
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): error expected", i, args)
		}
	}
}

// TestRunShardedAdmission drives the shard-routed onlinecp path:
// admission lands on one of the replica networks and the controller
// verification replays packets on the owning shard's substrate.
func TestRunShardedAdmission(t *testing.T) {
	err := run([]string{
		"-topology", "geant", "-source", "17", "-dest", "1,5,30",
		"-algorithm", "onlinecp", "-shards", "2", "-tenant", "gold",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseChainAliases(t *testing.T) {
	c, err := parseChain("lb,ids")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("chain length = %d, want 2", c.Len())
	}
}

func TestRunDOTOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.dot")
	err := run([]string{
		"-topology", "geant", "-source", "17", "-dest", "1,5", "-dot", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph pseudomulticast") {
		t.Fatal("DOT output missing header")
	}
}

// TestAlgorithmHelp pins the discoverability contract: -algorithm help
// works without any other flag and the table names every registry
// policy plus the offline one-shot algorithms and the onlinecp alias.
func TestAlgorithmHelp(t *testing.T) {
	if err := run([]string{"-algorithm", "help"}); err != nil {
		t.Fatalf("-algorithm help must not require -dest: %v", err)
	}
	var buf strings.Builder
	printAlgorithms(&buf)
	out := buf.String()
	for _, spec := range nfvmcast.Planners() {
		if !strings.Contains(out, spec.Name) {
			t.Errorf("help table missing registry policy %q:\n%s", spec.Name, out)
		}
		if spec.Description != "" && !strings.Contains(out, spec.Description) {
			t.Errorf("help table missing description for %q", spec.Name)
		}
	}
	for _, word := range []string{"appro", "oneserver", "nearest", "onlinecp"} {
		if !strings.Contains(out, word) {
			t.Errorf("help table missing %q:\n%s", word, out)
		}
	}
}
