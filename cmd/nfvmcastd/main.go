// Command nfvmcastd runs NFV-multicast admission as a long-lived
// service: a shard router over journaled engines with an HTTP/JSON
// control surface and write-ahead-logged crash recovery.
//
// Usage:
//
//	nfvmcastd -addr :8080 -wal /var/lib/nfvmcast/wal \
//	          -topology geant -seed 42 -policy Online_CP -shards 4
//
// Boot replays each shard's WAL (if -wal is set) before the listener
// binds, so a restarted daemon answers with exactly the pre-crash
// state. SIGTERM/SIGINT drains gracefully: in-flight requests finish,
// each shard takes a final snapshot, and the logs close.
//
// Endpoints: POST /v1/submit, /v1/release, /v1/apply; GET /v1/report;
// plus /metrics, /metrics.json, /healthz, /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nfvmcast/internal/daemon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfvmcastd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nfvmcastd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		walDir        = fs.String("wal", "", "WAL root directory (empty = in-memory, no durability)")
		topoName      = fs.String("topology", "geant", "topology: geant | as1755 | as4755 | waxman | fattree")
		nodes         = fs.Int("nodes", 100, "network size (waxman only)")
		seed          = fs.Int64("seed", 42, "substrate seed (capacities, costs, servers)")
		policy        = fs.String("policy", "Online_CP", "admission planner: Online_CP | SP")
		shards        = fs.Int("shards", 1, "shard count")
		workers       = fs.Int("workers", 0, "admission workers per shard (0 = engine default)")
		batchWindow   = fs.Int("batch-window", 0, "epoch batch window per shard (0 = unbatched)")
		queueDepth    = fs.Int("queue-depth", 64, "bounded admission queue; beyond it submit answers 429")
		reqTimeout    = fs.Duration("request-timeout", 10*time.Second, "server-side deadline per request")
		segmentBytes  = fs.Int64("segment-bytes", 0, "WAL segment rotation threshold (0 = default)")
		snapshotEvery = fs.Int("snapshot-every", 0, "records between snapshots (0 = default, <0 = never)")
		noSync        = fs.Bool("no-sync", false, "skip fsync on WAL barriers (testing only — crashes may lose acked state)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := daemon.New(daemon.Config{
		Topology:       *topoName,
		Nodes:          *nodes,
		Seed:           *seed,
		Policy:         *policy,
		Shards:         *shards,
		Workers:        *workers,
		BatchWindow:    *batchWindow,
		WALDir:         *walDir,
		SegmentBytes:   *segmentBytes,
		SnapshotEvery:  *snapshotEvery,
		NoSync:         *noSync,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}
	for _, b := range srv.Boot() {
		fmt.Printf("shard %s: recovered to lsn %d (%d records, %d sessions adopted, snapshot lsn %d)\n",
			b.Shard, b.LastLSN, b.Records, b.Adopted, b.SnapshotLSN)
		if b.TornTail {
			fmt.Printf("shard %s: torn tail cut at lsn %d — unacked suffix discarded\n", b.Shard, b.LastLSN)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		return err
	}
	fmt.Printf("nfvmcastd: listening on http://%s (topology %s, policy %s, %d shard(s)", ln.Addr(), *topoName, *policy, *shards)
	if *walDir != "" {
		fmt.Printf(", wal %s", *walDir)
	}
	fmt.Println(")")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if serr := srv.Shutdown(shutdownCtx); err == nil {
			err = serr
		}
		return err
	case <-ctx.Done():
		stop()
		fmt.Println("nfvmcastd: draining (signal received)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errCh
		fmt.Println("nfvmcastd: drained, state snapshotted, logs closed")
		return nil
	}
}
