// Command nfvload is a closed-loop HTTP load generator for a live
// nfvmcastd: it pre-builds a seeded admission workload, drives it
// through POST /v1/submit from a fixed number of concurrent
// connections (each connection issues its next request only after the
// previous response lands — closed-loop, so concurrency is the offered
// load), releases admitted sessions through POST /v1/release, and
// reports throughput plus a submit-latency histogram with exact
// percentiles.
//
// Usage:
//
//	nfvload -url http://127.0.0.1:8080 -topology geant -seed 42 \
//	        -c 8 -n 2000 -tenants 4 -json results/BENCH_daemon.json
//
// The -topology/-nodes/-seed flags must match the daemon's so the
// generated requests name nodes that exist on its substrate. With
// -json the run is captured in the unified results/BENCH_*.json
// schema.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nfvmcast/internal/daemon"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/topology"
	"nfvmcast/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nfvload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nfvload", flag.ContinueOnError)
	var (
		baseURL   = fs.String("url", "http://127.0.0.1:8080", "daemon base URL")
		topoName  = fs.String("topology", "geant", "daemon topology: geant | as1755 | as4755 | waxman | fattree")
		nodes     = fs.Int("nodes", 100, "network size (waxman only; must match the daemon)")
		seed      = fs.Int64("seed", 42, "workload seed (request arrivals)")
		conc      = fs.Int("c", 8, "concurrent connections (closed loop)")
		total     = fs.Int("n", 1000, "total requests to submit")
		tenants   = fs.Int("tenants", 4, "distinct tenants to spread requests over")
		noRelease = fs.Bool("no-release", false, "leave admitted sessions live instead of releasing them")
		timeout   = fs.Duration("timeout", 30*time.Second, "client-side timeout per call")
		jsonPath  = fs.String("json", "", "write the run capture here in the results/BENCH_*.json schema")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conc < 1 || *total < 1 || *tenants < 1 {
		return fmt.Errorf("need -c >= 1, -n >= 1, -tenants >= 1")
	}

	n, err := nodeCount(*topoName, *nodes, *seed)
	if err != nil {
		return err
	}
	bodies, ids, err := buildWorkload(n, *total, *tenants, *seed)
	if err != nil {
		return err
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}
	submitURL := strings.TrimRight(*baseURL, "/") + "/v1/submit"
	releaseURL := strings.TrimRight(*baseURL, "/") + "/v1/release"

	var next int64 = -1
	stats := make([]workerStats, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(ws *workerStats) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(bodies) {
					return
				}
				status, lat, err := post(client, submitURL, bodies[i])
				if err != nil {
					ws.netErrors++
					continue
				}
				ws.submitLat = append(ws.submitLat, lat)
				switch status {
				case http.StatusOK:
					ws.admitted++
					if !*noRelease {
						rb, _ := json.Marshal(daemon.ReleaseRequest{ID: ids[i]})
						if rs, rlat, rerr := post(client, releaseURL, rb); rerr == nil && rs == http.StatusOK {
							ws.releaseLat = append(ws.releaseLat, rlat)
						} else {
							ws.netErrors++
						}
					}
				case http.StatusConflict:
					ws.rejected++
				case http.StatusTooManyRequests:
					ws.overloaded++
				default:
					ws.httpErrors++
				}
			}
		}(&stats[w])
	}
	wg.Wait()
	wall := time.Since(start)

	agg := merge(stats)
	printSummary(out, agg, wall, *conc)
	if *jsonPath != "" {
		doc := captureDoc(agg, wall, *conc, *total, *topoName, *seed, "nfvload "+strings.Join(args, " "))
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "capture written to %s\n", *jsonPath)
	}
	if agg.netErrors > 0 || agg.httpErrors > 0 {
		return fmt.Errorf("%d transport and %d unexpected-status errors", agg.netErrors, agg.httpErrors)
	}
	return nil
}

// nodeCount resolves the substrate's node count so generated requests
// stay on-topology.
func nodeCount(name string, nodes int, seed int64) (int, error) {
	switch name {
	case "geant":
		return topology.GEANT().NumNodes(), nil
	case "as1755":
		return topology.AS1755().NumNodes(), nil
	case "as4755":
		return topology.AS4755().NumNodes(), nil
	case "waxman":
		return nodes, nil
	case "fattree":
		topo, err := topology.FatTree(4, seed)
		if err != nil {
			return 0, err
		}
		return topo.NumNodes(), nil
	default:
		return 0, fmt.Errorf("unknown topology %q", name)
	}
}

// buildWorkload pre-marshals every submit body so the measured loop
// does no JSON encoding of its own.
func buildWorkload(n, total, tenants int, seed int64) ([][]byte, []int, error) {
	gen, err := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), seed)
	if err != nil {
		return nil, nil, err
	}
	reqs, err := gen.Batch(total)
	if err != nil {
		return nil, nil, err
	}
	bodies := make([][]byte, len(reqs))
	ids := make([]int, len(reqs))
	for i, req := range reqs {
		body, err := json.Marshal(daemon.SubmitRequest{
			Tenant:  fmt.Sprintf("tenant-%d", i%tenants),
			Request: wal.EncodeRequest(req),
		})
		if err != nil {
			return nil, nil, err
		}
		bodies[i] = body
		ids[i] = req.ID
	}
	return bodies, ids, nil
}

func post(client *http.Client, url string, body []byte) (int, time.Duration, error) {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start), nil
}

type workerStats struct {
	submitLat  []time.Duration
	releaseLat []time.Duration
	admitted   int
	rejected   int
	overloaded int
	httpErrors int
	netErrors  int
}

func merge(stats []workerStats) workerStats {
	var agg workerStats
	for i := range stats {
		agg.submitLat = append(agg.submitLat, stats[i].submitLat...)
		agg.releaseLat = append(agg.releaseLat, stats[i].releaseLat...)
		agg.admitted += stats[i].admitted
		agg.rejected += stats[i].rejected
		agg.overloaded += stats[i].overloaded
		agg.httpErrors += stats[i].httpErrors
		agg.netErrors += stats[i].netErrors
	}
	sort.Slice(agg.submitLat, func(i, j int) bool { return agg.submitLat[i] < agg.submitLat[j] })
	sort.Slice(agg.releaseLat, func(i, j int) bool { return agg.releaseLat[i] < agg.releaseLat[j] })
	return agg
}

// pct reads an exact percentile from a sorted latency slice.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func mean(sorted []time.Duration) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return sum / time.Duration(len(sorted))
}

// histBounds are the wrk-style latency buckets of the printed
// histogram (upper bounds; the last bucket is open).
var histBounds = []time.Duration{
	200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond,
}

func printSummary(out io.Writer, agg workerStats, wall time.Duration, conc int) {
	done := len(agg.submitLat)
	fmt.Fprintf(out, "nfvload: %d submits in %v (%.1f req/s) over %d connections\n",
		done, wall.Round(time.Millisecond), float64(done)/wall.Seconds(), conc)
	fmt.Fprintf(out, "  admitted %d (released %d), rejected %d, overloaded %d, http errors %d, net errors %d\n",
		agg.admitted, len(agg.releaseLat), agg.rejected, agg.overloaded, agg.httpErrors, agg.netErrors)
	for _, series := range []struct {
		name string
		lat  []time.Duration
	}{{"submit", agg.submitLat}, {"release", agg.releaseLat}} {
		if len(series.lat) == 0 {
			continue
		}
		fmt.Fprintf(out, "  %s latency: mean %v  p50 %v  p90 %v  p99 %v  max %v\n",
			series.name, mean(series.lat).Round(time.Microsecond),
			pct(series.lat, 0.50).Round(time.Microsecond),
			pct(series.lat, 0.90).Round(time.Microsecond),
			pct(series.lat, 0.99).Round(time.Microsecond),
			series.lat[len(series.lat)-1].Round(time.Microsecond))
	}
	if done == 0 {
		return
	}
	fmt.Fprintln(out, "  submit latency histogram:")
	counts := make([]int, len(histBounds)+1)
	for _, d := range agg.submitLat {
		b := sort.Search(len(histBounds), func(i int) bool { return d <= histBounds[i] })
		counts[b]++
	}
	for b, c := range counts {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf("> %v", histBounds[len(histBounds)-1])
		if b < len(histBounds) {
			label = fmt.Sprintf("<= %v", histBounds[b])
		}
		fmt.Fprintf(out, "    %-12s %6d  %5.1f%%  %s\n",
			label, c, 100*float64(c)/float64(done), strings.Repeat("#", 40*c/done))
	}
}

// benchCapture mirrors the unified results/BENCH_*.json schema (see
// results_schema_test.go at the repo root).
type benchCapture struct {
	Benchmark        string           `json:"benchmark"`
	Workload         string           `json:"workload"`
	Command          string           `json:"command"`
	Date             string           `json:"date"`
	Environment      map[string]any   `json:"environment"`
	Results          []map[string]any `json:"results"`
	CorrectnessGates string           `json:"correctness_gates"`
}

func captureDoc(agg workerStats, wall time.Duration, conc, total int, topoName string, seed int64, command string) benchCapture {
	series := func(name string, lat []time.Duration, extra map[string]any) map[string]any {
		entry := map[string]any{
			"name":      name,
			"ns_per_op": mean(lat).Nanoseconds(),
			"count":     len(lat),
			"p50_us":    pct(lat, 0.50).Microseconds(),
			"p90_us":    pct(lat, 0.90).Microseconds(),
			"p99_us":    pct(lat, 0.99).Microseconds(),
		}
		if len(lat) > 0 {
			entry["max_us"] = lat[len(lat)-1].Microseconds()
		}
		for k, v := range extra {
			entry[k] = v
		}
		return entry
	}
	results := []map[string]any{
		series("submit", agg.submitLat, map[string]any{
			"throughput_rps": float64(len(agg.submitLat)) / wall.Seconds(),
			"admitted":       agg.admitted,
			"rejected":       agg.rejected,
			"overloaded":     agg.overloaded,
		}),
	}
	if len(agg.releaseLat) > 0 {
		results = append(results, series("release", agg.releaseLat, nil))
	}
	return benchCapture{
		Benchmark: "nfvload closed-loop daemon throughput",
		Workload: fmt.Sprintf(
			"%d OnlineGeneratorConfig requests (seed %d) against nfvmcastd on %s, %d closed-loop connections, admit-then-release round-trips over HTTP/JSON",
			total, seed, topoName, conc),
		Command: command,
		Date:    time.Now().Format("2006-01-02"),
		Environment: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"transport":  "loopback HTTP/1.1, keep-alive",
		},
		Results: results,
		CorrectnessGates: "internal/daemon HTTP contract suite (submit/release round-trips, overload backpressure, drain refusal) " +
			"and the engine determinism oracles behind it; every admitted session in this run was released, so a clean daemon " +
			"reports zero live sessions afterwards",
	}
}
