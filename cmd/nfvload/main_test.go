package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvmcast/internal/daemon"
)

// TestRunAgainstLiveDaemon drives the generator end to end against an
// in-process nfvmcastd: every request must get a terminal verdict,
// admitted sessions must be released (leaving the daemon with zero
// live sessions), and the -json capture must carry the unified
// BENCH_*.json envelope.
func TestRunAgainstLiveDaemon(t *testing.T) {
	srv, err := daemon.New(daemon.Config{Topology: "geant", Seed: 42, Policy: "Online_CP"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	capture := filepath.Join(t.TempDir(), "capture.json")
	var out bytes.Buffer
	err = run([]string{
		"-url", ts.URL, "-topology", "geant", "-seed", "7",
		"-c", "4", "-n", "60", "-tenants", "2", "-json", capture,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "60 submits") {
		t.Fatalf("summary did not account for all submits:\n%s", out.String())
	}

	rep := srv.Router().Report()
	if rep.Live != 0 {
		t.Fatalf("daemon still holds %d live sessions after a releasing run", rep.Live)
	}

	raw, err := os.ReadFile(capture)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmark   string           `json:"benchmark"`
		Workload    string           `json:"workload"`
		Command     string           `json:"command"`
		Date        string           `json:"date"`
		Environment map[string]any   `json:"environment"`
		Results     []map[string]any `json:"results"`
		Gates       string           `json:"correctness_gates"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("capture is not valid JSON: %v", err)
	}
	for field, v := range map[string]string{
		"benchmark": doc.Benchmark, "workload": doc.Workload,
		"command": doc.Command, "date": doc.Date, "correctness_gates": doc.Gates,
	} {
		if v == "" {
			t.Errorf("capture missing %q", field)
		}
	}
	if len(doc.Environment) == 0 || len(doc.Results) == 0 {
		t.Fatalf("capture missing environment or results: %s", raw)
	}
	for _, entry := range doc.Results {
		if ns, ok := entry["ns_per_op"].(float64); !ok || ns <= 0 {
			t.Fatalf("entry %v: ns_per_op missing or not positive", entry["name"])
		}
	}
}

// TestRunLeavesSessionsWithNoRelease pins the -no-release mode: the
// admitted sessions stay live on the daemon.
func TestRunLeavesSessionsWithNoRelease(t *testing.T) {
	srv, err := daemon.New(daemon.Config{Topology: "geant", Seed: 42, Policy: "Online_CP"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	if err := run([]string{
		"-url", ts.URL, "-topology", "geant", "-seed", "9",
		"-c", "2", "-n", "20", "-no-release",
	}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if rep := srv.Router().Report(); rep.Live == 0 {
		t.Fatal("-no-release run left no live sessions; expected some admissions to stick")
	}
}
