// Command nfvsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	nfvsim -experiment fig5 [-requests 100] [-seed 42] [-k 3]
//	nfvsim -experiment all [-reps 5] [-json results/]
//	nfvsim -experiment fig8 -quick
//	nfvsim -experiment fig8 -metrics-addr :9090 -metrics-dir results/
//	nfvsim -metrics-addr :9090   # serve an idle metrics endpoint
//	nfvsim -list
//	nfvsim -scenario flash-crowd            # shipped scenario by name
//	nfvsim -scenario path/to/scenario.json  # declarative JSON scenario
//	nfvsim -scenario all -json results/
//	nfvsim -scenario flash-crowd -daemon http://127.0.0.1:8080
//	nfvsim -scenario-list
//
// Each experiment prints one aligned text table per figure panel; see
// DESIGN.md §3 for the figure index and EXPERIMENTS.md for recorded
// paper-vs-measured results. With -metrics-addr the admission engines
// of the online drivers report per-policy counters, reason-labelled
// rejections and gauges at http://<addr>/metrics (Prometheus text
// format; /metrics.json and /debug/pprof/ are also mounted), and
// -metrics-dir writes one metrics-<experiment>.json summary per
// experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"nfvmcast/internal/obs"
	"nfvmcast/internal/sim"
	"nfvmcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nfvsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nfvsim", flag.ContinueOnError)
	var (
		experiment  = fs.String("experiment", "", "experiment to run (or 'all')")
		list        = fs.Bool("list", false, "list available experiments")
		requests    = fs.Int("requests", 0, "requests per measurement point (default per-experiment)")
		seed        = fs.Int64("seed", 42, "random seed")
		k           = fs.Int("k", 3, "server budget K for Appro_Multi")
		workers     = fs.Int("workers", 0, "subset-evaluation goroutines per Appro_Multi solve (0 = sequential; the harness already parallelises across sweep points)")
		engWorkers  = fs.Int("engine-workers", 0, "planning goroutines per admission engine in the online drivers (0/1 = sequential, byte-identical to the direct admitters; -1 = all CPUs)")
		quick       = fs.Bool("quick", false, "smaller sweeps for a fast smoke run")
		jsonDir     = fs.String("json", "", "also write results as JSON into this directory")
		reps        = fs.Int("reps", 1, "repetitions per experiment (mean ± 95% CI when > 1)")
		metricsAddr = fs.String("metrics-addr", "", "serve engine metrics over HTTP at this address (/metrics Prometheus text, /metrics.json, /debug/pprof/); with no -experiment, serve until interrupted")
		metricsDir  = fs.String("metrics-dir", "", "write one metrics-<experiment>.json summary per experiment into this directory")
		scenarioRun = fs.String("scenario", "", "run a scenario: a shipped name (see -scenario-list), 'all', or a JSON config path")
		scenarioLs  = fs.Bool("scenario-list", false, "list the shipped scenario library (tenants, shards, failure steps per scenario)")
		scenarioWk  = fs.Int("scenario-workers", -1, "override the scenario's engine worker count (-1 = keep the config's; 0/1 = sequential; applies per shard engine when the scenario is sharded — decisions are identical at any value)")
		shards      = fs.Int("shards", -1, "override the scenario's shard count (-1 = keep the config's; 0/1 = single engine; >1 routes through the shard router, one engine per identical substrate replica)")
		tenantOnly  = fs.String("tenant", "", "restrict the scenario to one tenant class by name (default: run every class)")
		daemonURL   = fs.String("daemon", "", "drive the scenario against a live nfvmcastd at this base URL (e.g. http://127.0.0.1:8080) instead of in-process; the daemon must be serving the scenario's topology and seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarioLs {
		listScenarios(os.Stdout)
		return nil
	}
	if *scenarioRun != "" {
		return runScenarios(*scenarioRun, scenarioOverrides{
			workers: *scenarioWk,
			shards:  *shards,
			tenant:  *tenantOnly,
			daemon:  *daemonURL,
		}, *jsonDir)
	}
	if *list || (*experiment == "" && *metricsAddr == "") {
		fmt.Println("available experiments:")
		for _, e := range sim.Experiments {
			fmt.Printf("  %-20s %s\n", e.Name, e.Desc)
		}
		fmt.Println("  all                  run everything")
		return nil
	}

	// The served registry swaps per experiment; before the first (and
	// with no experiment at all) an empty one answers scrapes.
	var current atomic.Pointer[obs.Registry]
	current.Store(obs.NewRegistry())
	if *metricsAddr != "" {
		addr, stop, err := obs.ListenAndServe(*metricsAddr, current.Load, nil)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("# metrics: http://%s/metrics (also /metrics.json, /debug/pprof/)\n", addr)
		if *experiment == "" {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			fmt.Println("# no -experiment: serving metrics until interrupted (ctrl-c)")
			<-sig
			return nil
		}
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.K = *k
	cfg.Workers = *workers
	cfg.EngineWorkers = *engWorkers
	if *quick {
		cfg.Requests = 20
		cfg.NetworkSizes = []int{50, 100, 150}
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	// The online figures are cheap per request; use the paper's 300
	// arrivals unless the user overrode the count.
	onlineCfg := cfg
	if *requests == 0 && !*quick {
		onlineCfg.Requests = 300
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = names[:0]
		for _, e := range sim.Experiments {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		c := cfg
		switch name {
		case "fig8", "fig9", "ablation-costmodel", "ext-churn", "ext-erlang", "ext-onlinek", "ext-reoptimize", "ext-recover", "ext-distchain":
			c = onlineCfg
		}
		if *metricsAddr != "" || *metricsDir != "" {
			// Fresh registry per experiment so counters are attributable;
			// scrapes see the experiment currently running.
			c.Metrics = obs.NewRegistry()
			current.Store(c.Metrics)
		}
		start := time.Now()
		figs, err := sim.Replicate(name, c, *reps)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *metricsDir != "" {
			path, merr := sim.WriteMetricsSummary(*metricsDir, name, c.Metrics)
			if merr != nil {
				return merr
			}
			fmt.Printf("# metrics summary written to %s\n", path)
		}
		for _, f := range figs {
			fmt.Println(f.Render())
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*jsonDir, name+".json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			werr := trace.NewResults(name, c, figs).Write(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("write %s: %w", path, werr)
			}
			// The recovery experiment also captures its benchmark
			// artifact: campaign stats plus the paired local-repair vs
			// full-re-plan timing probe.
			if name == "ext-recover" {
				bpath, berr := sim.WriteRecoveryBench(*jsonDir, c)
				if berr != nil {
					return berr
				}
				fmt.Printf("# recovery benchmark written to %s\n", bpath)
			}
		}
		fmt.Printf("# %s completed in %v (requests=%d, seed=%d, K=%d, reps=%d)\n\n",
			name, time.Since(start).Round(time.Millisecond), c.Requests, c.Seed, c.K, *reps)
	}
	return nil
}
