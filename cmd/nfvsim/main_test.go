package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nfvmcast/internal/core"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	// No experiment behaves like -list.
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-quick"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickExperimentWithJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "3", "-quick", "-json", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-evaluator.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON dump")
	}
}

func TestRunReplicated(t *testing.T) {
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "2", "-quick", "-reps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScenarioList(t *testing.T) {
	if err := run([]string{"-scenario-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioByName(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scenario", "multi-tenant", "-json", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-multi-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty scenario result JSON")
	}
}

func TestScenarioFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.json")
	doc := `{
		"name": "tiny",
		"topology": {"name": "geant"},
		"policy": "SP",
		"seed": 2,
		"horizonHours": 0.5,
		"tenants": [{
			"name": "a",
			"phases": [{"kind": "steady", "startHours": 0, "endHours": 0.5, "ratePerHour": 20}]
		}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestScenarioShardOverride forces a library scenario through the
// shard router (and back down to a single engine) from the CLI.
func TestScenarioShardOverride(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scenario", "multi-tenant", "-shards", "2", "-json", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-multi-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"shards": 2`) {
		t.Fatal("result JSON missing shard count")
	}
	// Forcing shards onto the rule-limited scenario must surface the
	// config validator's incompatibility error, not crash.
	if err := run([]string{"-scenario", "rule-limited", "-shards", "2"}); err == nil {
		t.Fatal("sharded rule-limited scenario accepted")
	}
}

// TestScenarioTenantFilter restricts a run to one tenant class and
// rejects names the scenario does not define.
func TestScenarioTenantFilter(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scenario", "multi-tenant", "-tenant", "bronze", "-json", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-multi-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"gold"`) {
		t.Fatal("tenant filter leaked another class's sessions")
	}
	if err := run([]string{"-scenario", "multi-tenant", "-tenant", "nope"}); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}

// TestScenarioListShowsRegistryPolicies pins -scenario-list's second
// table: every planner-registry policy appears with its description,
// so scenario authors discover valid "policy" values from the CLI.
func TestScenarioListShowsRegistryPolicies(t *testing.T) {
	var buf strings.Builder
	listScenarios(&buf)
	out := buf.String()
	if !strings.Contains(out, "planner registry") {
		t.Fatalf("policy table header missing:\n%s", out)
	}
	for _, spec := range core.Planners() {
		if !strings.Contains(out, spec.Name) {
			t.Errorf("-scenario-list missing registry policy %q", spec.Name)
		}
		if spec.Description != "" && !strings.Contains(out, spec.Description) {
			t.Errorf("-scenario-list missing description for %q", spec.Name)
		}
	}
}
