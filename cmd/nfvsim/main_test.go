package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	// No experiment behaves like -list.
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-quick"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickExperimentWithJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "3", "-quick", "-json", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-evaluator.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON dump")
	}
}

func TestRunReplicated(t *testing.T) {
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "2", "-quick", "-reps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScenarioList(t *testing.T) {
	if err := run([]string{"-scenario-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioByName(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scenario", "multi-tenant", "-json", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scenario-multi-tenant.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty scenario result JSON")
	}
}

func TestScenarioFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.json")
	doc := `{
		"name": "tiny",
		"topology": {"name": "geant"},
		"policy": "SP",
		"seed": 2,
		"horizonHours": 0.5,
		"tenants": [{
			"name": "a",
			"phases": [{"kind": "steady", "startHours": 0, "endHours": 0.5, "ratePerHour": 20}]
		}]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
