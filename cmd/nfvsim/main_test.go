package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	// No experiment behaves like -list.
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-quick"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickExperimentWithJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "3", "-quick", "-json", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-evaluator.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty JSON dump")
	}
}

func TestRunReplicated(t *testing.T) {
	err := run([]string{
		"-experiment", "ablation-evaluator",
		"-requests", "2", "-quick", "-reps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}
