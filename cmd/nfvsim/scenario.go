package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nfvmcast/internal/core"
	"nfvmcast/internal/scenario"
)

// Scenario-harness subcommands: -scenario runs one scenario (a shipped
// library name, "all", or a path to a JSON config) and prints the
// result as JSON; -scenario-list shows the shipped library. A run with
// invariant violations exits non-zero — the harness is a test driver
// first.

// listScenarios prints the shipped scenario library.
func listScenarios(w io.Writer) {
	fmt.Fprintln(w, "shipped scenarios (run with -scenario <name>, or pass a JSON config path):")
	for _, cfg := range scenario.Library() {
		extras := ""
		if len(cfg.Failures) > 0 {
			extras = fmt.Sprintf(", %d failure steps", len(cfg.Failures))
		}
		if cfg.MaxRulesPerSwitch > 0 {
			extras += fmt.Sprintf(", <=%d rules/switch", cfg.MaxRulesPerSwitch)
		}
		if cfg.Shards > 1 {
			extras += fmt.Sprintf(", %d shards", cfg.Shards)
		}
		fmt.Fprintf(w, "  %-18s %s/%s, %gh horizon, %d tenants%s\n",
			cfg.Name, cfg.Topology.Name, cfg.Policy, cfg.HorizonHours, len(cfg.Tenants), extras)
	}
	fmt.Fprintln(w, "  all                run the whole library")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "policies (a scenario's \"policy\" field; from the planner registry):")
	specs := core.Planners()
	width := 0
	for _, s := range specs {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range specs {
		fmt.Fprintf(w, "  %-*s  %s\n", width, s.Name, s.Description)
	}
}

// scenarioConfigs resolves the -scenario argument: "all", a library
// name, or a config file path.
func scenarioConfigs(spec string) ([]*scenario.Config, error) {
	if spec == "all" {
		return scenario.Library(), nil
	}
	if cfg, ok := scenario.LibraryConfig(spec); ok {
		return []*scenario.Config{cfg}, nil
	}
	cfg, err := scenario.Load(spec)
	if err != nil {
		if _, serr := os.Stat(spec); os.IsNotExist(serr) && filepath.Ext(spec) == "" {
			return nil, fmt.Errorf("scenario %q: not a shipped scenario (see -scenario-list) and no such file", spec)
		}
		return nil, err
	}
	return []*scenario.Config{cfg}, nil
}

// scenarioOverrides carries the CLI knobs that rewrite a resolved
// scenario config before it runs. Negative ints and the empty tenant
// string mean "keep the config's own value".
type scenarioOverrides struct {
	workers int
	shards  int
	tenant  string
	daemon  string // non-empty: drive a live nfvmcastd at this base URL
}

// apply rewrites cfg in place; it errors when -tenant names a class the
// scenario does not define.
func (o scenarioOverrides) apply(cfg *scenario.Config) error {
	if o.workers >= 0 {
		cfg.Workers = o.workers
	}
	if o.shards >= 0 {
		cfg.Shards = o.shards
	}
	if o.tenant != "" {
		kept := cfg.Tenants[:0]
		for _, t := range cfg.Tenants {
			if t.Name == o.tenant {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			names := make([]string, len(cfg.Tenants))
			for i, t := range cfg.Tenants {
				names[i] = t.Name
			}
			return fmt.Errorf("scenario %q has no tenant %q (tenants: %s)",
				cfg.Name, o.tenant, strings.Join(names, ", "))
		}
		cfg.Tenants = kept
	}
	return nil
}

// runScenarios drives each resolved scenario and prints one JSON
// result per run.
func runScenarios(spec string, over scenarioOverrides, jsonDir string) error {
	cfgs, err := scenarioConfigs(spec)
	if err != nil {
		return err
	}
	violations := 0
	for _, cfg := range cfgs {
		if err := over.apply(cfg); err != nil {
			return err
		}
		var res *scenario.Result
		if over.daemon != "" {
			res, err = scenario.RunDaemon(cfg, over.daemon)
		} else {
			res, err = scenario.Run(cfg)
		}
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		if jsonDir != "" {
			path := filepath.Join(jsonDir, "scenario-"+cfg.Name+".json")
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				return err
			}
		}
		violations += len(res.Violations)
	}
	if violations > 0 {
		return fmt.Errorf("scenario run finished with %d invariant violations", violations)
	}
	return nil
}
