package nfvmcast_test

// End-to-end tests of the public API, written as an external user of
// the library would use it.

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"nfvmcast"
)

func buildNetwork(t *testing.T, seed int64) *nfvmcast.Network {
	t.Helper()
	topo, err := nfvmcast.WaxmanDegree(60, nfvmcast.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestPublicOfflineFlow(t *testing.T) {
	nw := buildNetwork(t, 5)
	req := &nfvmcast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []nfvmcast.NodeID{10, 20, 30},
		BandwidthMbps: 120,
		Chain:         nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.IDS),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.OperationalCost <= 0 {
		t.Fatalf("cost = %v", sol.OperationalCost)
	}
	base, err := nfvmcast.AlgOneServer(nw, req, false)
	if err != nil {
		t.Fatal(err)
	}
	if sol.OperationalCost > base.OperationalCost+1e-6 {
		t.Fatalf("ApproMulti %v worse than baseline %v",
			sol.OperationalCost, base.OperationalCost)
	}
	near, err := nfvmcast.AlgOneServerNearest(nw, req, false)
	if err != nil {
		t.Fatal(err)
	}
	if base.OperationalCost > near.OperationalCost+1e-6 {
		t.Fatal("jointly-optimised baseline worse than nearest-server variant")
	}

	// Commit, install, verify end to end.
	if err := nw.Allocate(nfvmcast.AllocationFor(req, sol.Tree)); err != nil {
		t.Fatal(err)
	}
	ctrl := nfvmcast.NewController(nw)
	if err := ctrl.Install(req, sol.Tree); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.VerifyDelivery(req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestPublicOnlineFlow(t *testing.T) {
	nw := buildNetwork(t, 9)
	cp, err := nfvmcast.NewOnlineCP(nw, nfvmcast.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := nfvmcast.NewGenerator(nw.NumNodes(), nfvmcast.OnlineGeneratorConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 50; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if !nfvmcast.IsRejection(aerr) {
				t.Fatal(aerr)
			}
			continue
		}
		admitted++
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatal(derr)
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if cp.AdmittedCount() != admitted {
		t.Fatalf("AdmittedCount = %d, want %d", cp.AdmittedCount(), admitted)
	}
	// Departure path through the façade.
	first := cp.Admitted()[0]
	if _, err := cp.Depart(first.Request.ID); err != nil {
		t.Fatal(err)
	}
	if cp.LiveCount() != admitted-1 {
		t.Fatalf("LiveCount = %d, want %d", cp.LiveCount(), admitted-1)
	}
}

func TestPublicGraphHelpers(t *testing.T) {
	g := nfvmcast.NewGraph(4)
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := nfvmcast.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dist[3] != 3 {
		t.Fatalf("Dist[3] = %v, want 3", sp.Dist[3])
	}
	st, err := nfvmcast.SteinerKMB(g, []nfvmcast.NodeID{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != 3 {
		t.Fatalf("steiner weight = %v, want 3", st.Weight)
	}
}

func TestPublicTopologies(t *testing.T) {
	for name, topo := range map[string]*nfvmcast.Topology{
		"GEANT":  nfvmcast.GEANT(),
		"AS1755": nfvmcast.AS1755(),
		"AS4755": nfvmcast.AS4755(),
	} {
		if err := topo.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPublicErrorMatching(t *testing.T) {
	nw := buildNetwork(t, 11)
	// Saturate servers, then check the rejection matches ErrRejected.
	servers := make(map[nfvmcast.NodeID]float64)
	for _, v := range nw.Servers() {
		servers[v] = nw.ResidualCompute(v)
	}
	if err := nw.Allocate(nfvmcast.Allocation{Servers: servers}); err != nil {
		t.Fatal(err)
	}
	cp, err := nfvmcast.NewOnlineCP(nw, nfvmcast.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{5},
		BandwidthMbps: 100, Chain: nfvmcast.MustChain(nfvmcast.Proxy),
	}
	_, aerr := cp.Admit(req)
	if !errors.Is(aerr, nfvmcast.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", aerr)
	}
	if !nfvmcast.IsRejection(aerr) {
		t.Fatal("IsRejection disagrees with errors.Is")
	}
}

func TestPublicVizAndBridges(t *testing.T) {
	topo := nfvmcast.GEANT()
	var buf strings.Builder
	if err := nfvmcast.WriteTopologyDOT(&buf, topo, []nfvmcast.NodeID{17}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GEANT") {
		t.Fatal("topology DOT missing name")
	}
	nw := buildNetwork(t, 14)
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{9},
		BandwidthMbps: 80, Chain: nfvmcast.MustChain(nfvmcast.IDS),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := nfvmcast.WriteTreeDOT(&buf, nw, nil, sol.Tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("tree DOT missing header")
	}
	// Bridges through the façade.
	line := nfvmcast.NewGraph(3)
	line.MustAddEdge(0, 1, 1)
	line.MustAddEdge(1, 2, 1)
	if got := nfvmcast.Bridges(line); len(got) != 2 {
		t.Fatalf("bridges = %v, want both edges", got)
	}
}
