package nfvmcast

// The recorded benchmark artifacts under results/BENCH_*.json share
// one schema (the shape BENCH_plan.json introduced) so tooling — the
// CI bench-smoke step, benchstat extraction scripts, the EXPERIMENTS
// tables — can parse every file the same way. This test is that
// schema's executable definition: top-level keys, a flat results list
// of named entries with ns_per_op, and a correctness_gates statement
// tying the numbers to the suite that validates the mechanism.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// benchDoc mirrors the unified BENCH_*.json schema. Extra per-entry
// metric keys (admits_per_sec, bytes_per_op, rounds, ...) are
// free-form; the envelope is not.
type benchDoc struct {
	Benchmark        string           `json:"benchmark"`
	Workload         string           `json:"workload"`
	Command          string           `json:"command"`
	Date             string           `json:"date"`
	Environment      map[string]any   `json:"environment"`
	Results          []map[string]any `json:"results"`
	CorrectnessGates any              `json:"correctness_gates"`
	Mechanism        string           `json:"mechanism"` // optional
}

func TestBenchResultsSchema(t *testing.T) {
	paths, err := filepath.Glob("results/BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("found %d results/BENCH_*.json files, want >= 8 — moved?", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Strict pass: a results value that is not a list (the
			// pre-unification BENCH_recover.json shape) must fail
			// loudly here, not decode to nil.
			var doc benchDoc
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatalf("does not match the unified schema: %v", err)
			}
			for field, v := range map[string]string{
				"benchmark": doc.Benchmark,
				"workload":  doc.Workload,
				"command":   doc.Command,
				"date":      doc.Date,
			} {
				if v == "" {
					t.Errorf("missing or empty %q", field)
				}
			}
			if len(doc.Environment) == 0 {
				t.Error("missing environment")
			}
			if doc.CorrectnessGates == nil {
				t.Error("missing correctness_gates — numbers without a validating suite are not evidence")
			}
			if len(doc.Results) == 0 {
				t.Fatal("results must be a non-empty list")
			}
			for i, entry := range doc.Results {
				name, _ := entry["name"].(string)
				if name == "" {
					t.Errorf("results[%d]: missing name", i)
				}
				ns, ok := entry["ns_per_op"].(float64)
				if !ok || ns <= 0 {
					t.Errorf("results[%d] (%s): ns_per_op missing or not positive: %v",
						i, name, entry["ns_per_op"])
				}
			}
			// No stray top-level keys: the envelope is closed so a new
			// bespoke key (identity_check, summary, ...) cannot creep
			// back in unnoticed.
			var loose map[string]any
			if err := json.Unmarshal(raw, &loose); err != nil {
				t.Fatal(err)
			}
			known := map[string]bool{
				"benchmark": true, "workload": true, "command": true,
				"date": true, "environment": true, "results": true,
				"correctness_gates": true, "mechanism": true,
			}
			for k := range loose {
				if !known[k] {
					t.Errorf("unknown top-level key %q — extend the schema deliberately or fold it into an existing key", k)
				}
			}
		})
	}
}

// TestBenchSchemaRejectsLegacyShapes pins the failure mode the schema
// exists to catch: a dict-shaped results section must not decode.
func TestBenchSchemaRejectsLegacyShapes(t *testing.T) {
	legacy := `{"benchmark": "x", "results": {"timing": {"sessions": 1}}}`
	var doc benchDoc
	if err := json.Unmarshal([]byte(legacy), &doc); err == nil {
		t.Fatal("dict-shaped results decoded silently; the schema gate is toothless")
	}
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"results": [{"name": "a", "ns_per_op": %d}]}`, 12)), &doc); err != nil {
		t.Fatalf("list-shaped results must decode: %v", err)
	}
}
