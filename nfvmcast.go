// Package nfvmcast is a library for NFV-enabled multicasting in
// software-defined networks, reproducing "Approximation and Online
// Algorithms for NFV-Enabled Multicasting in SDNs" (Xu, Liang, Huang,
// Jia, Guo, Galis — ICDCS 2017).
//
// It provides:
//
//   - ApproMulti — the paper's 2K-approximation for minimum-cost
//     NFV-enabled multicast trees (Appro_Multi / Appro_Multi_Cap);
//   - NewOnlineCP — the O(log |V|)-competitive online admission
//     algorithm with its exponential resource-cost model (Online_CP);
//   - the evaluation baselines AlgOneServer, AlgOneServerNearest,
//     NewOnlineSP and NewOnlineSPStatic;
//   - the substrates everything runs on: a weighted-graph library,
//     GT-ITM-style topology generators plus embedded GÉANT and
//     ISP-scale topologies, an NFV service-chain model, and a
//     capacitated SDN with per-switch flow tables and a packet-replay
//     verifier.
//
// Quickstart:
//
//	topo, _ := nfvmcast.WaxmanDegree(100, nfvmcast.DefaultAvgDegree, 0.14, 42)
//	rng := rand.New(rand.NewSource(1))
//	nw, _ := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
//	req := &nfvmcast.Request{
//		ID: 1, Source: 0, Destinations: []int{5, 9},
//		BandwidthMbps: 100,
//		Chain:         nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.Firewall),
//	}
//	sol, _ := nfvmcast.ApproMulti(nw, req, nfvmcast.DefaultOptions())
//	fmt.Println(sol.OperationalCost)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduced evaluation.
package nfvmcast

import (
	"io"

	"nfvmcast/internal/core"
	"nfvmcast/internal/daemon"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/topology"
	"nfvmcast/internal/viz"
	"nfvmcast/internal/wal"
)

// Graph substrate.
type (
	// Graph is an undirected weighted graph (see internal/graph).
	Graph = graph.Graph
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// EdgeID identifies a graph edge.
	EdgeID = graph.EdgeID
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// ShortestPaths is a single-source shortest-path result.
	ShortestPaths = graph.ShortestPaths
	// SteinerTree is an approximate Steiner tree.
	SteinerTree = graph.SteinerTree
	// RootedTree is a rooted tree view with LCA queries.
	RootedTree = graph.RootedTree
)

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Dijkstra computes single-source shortest paths.
func Dijkstra(g *Graph, src NodeID) (*ShortestPaths, error) { return graph.Dijkstra(g, src) }

// SteinerKMB computes a 2-approximate Steiner tree over terminals
// (Kou–Markowsky–Berman).
func SteinerKMB(g *Graph, terminals []NodeID) (*SteinerTree, error) {
	return graph.SteinerKMB(g, terminals)
}

// Bridges returns the cut edges of g (Tarjan, O(n+m)).
func Bridges(g *Graph) []EdgeID { return graph.Bridges(g) }

// SteinerExact computes an exact minimum Steiner tree by the
// Dreyfus–Wagner dynamic program (exponential in the terminal count;
// small instances only).
func SteinerExact(g *Graph, terminals []NodeID) (*SteinerTree, error) {
	return graph.SteinerExact(g, terminals)
}

// Topologies.
type (
	// Topology is a named network structure.
	Topology = topology.Topology
	// WaxmanParams parameterises the Waxman random-graph model.
	WaxmanParams = topology.WaxmanParams
	// TransitStubParams parameterises the transit-stub hierarchy.
	TransitStubParams = topology.TransitStubParams
)

// DefaultAvgDegree is the evaluation networks' target average degree.
const DefaultAvgDegree = topology.DefaultAvgDegree

// Topology constructors (see internal/topology).
var (
	Waxman         = topology.Waxman
	WaxmanDegree   = topology.WaxmanDegree
	TransitStub    = topology.TransitStub
	FatTree        = topology.FatTree
	FatTreeServers = topology.FatTreeServers
	GEANT          = topology.GEANT
	AS1755         = topology.AS1755
	AS4755         = topology.AS4755
	SyntheticISP   = topology.SyntheticISP
)

// NFV model.
type (
	// Function is a virtualised network-function type.
	Function = nfv.Function
	// Chain is an ordered service chain SC_k.
	Chain = nfv.Chain
)

// The five network-function types of the paper's evaluation.
const (
	Firewall     = nfv.Firewall
	Proxy        = nfv.Proxy
	NAT          = nfv.NAT
	IDS          = nfv.IDS
	LoadBalancer = nfv.LoadBalancer
)

// Chain constructors.
var (
	NewChain    = nfv.NewChain
	MustChain   = nfv.MustChain
	RandomChain = nfv.RandomChain
)

// Requests and routing trees.
type (
	// Request is an NFV-enabled multicast request r_k.
	Request = multicast.Request
	// PseudoTree is the routing graph realising a request.
	PseudoTree = multicast.PseudoTree
	// Hop is one directed link traversal of a pseudo tree.
	Hop = multicast.Hop
	// Generator draws random request workloads.
	Generator = multicast.Generator
	// GeneratorConfig parameterises a workload.
	GeneratorConfig = multicast.GeneratorConfig
)

// Workload constructors (paper §VI.A parameters).
var (
	NewGenerator           = multicast.NewGenerator
	DefaultGeneratorConfig = multicast.DefaultGeneratorConfig
	OnlineGeneratorConfig  = multicast.OnlineGeneratorConfig
)

// SDN substrate.
type (
	// Network is a capacitated SDN.
	Network = sdn.Network
	// NetworkConfig holds resource capacity and cost ranges.
	NetworkConfig = sdn.Config
	// Allocation is a request's resource bundle.
	Allocation = sdn.Allocation
	// Controller compiles trees into per-switch flow tables.
	Controller = sdn.Controller
	// FlowTable is one switch's rule set.
	FlowTable = sdn.FlowTable
	// Delivery is the outcome of a packet replay.
	Delivery = sdn.Delivery
)

// Network constructors (paper §VI.A resource ranges).
var (
	NewNetwork                 = sdn.NewNetwork
	NewNetworkWithServers      = sdn.NewNetworkWithServers
	DefaultNetworkConfig       = sdn.DefaultConfig
	NewController              = sdn.NewController
	NewControllerWithRuleLimit = sdn.NewControllerWithRuleLimit
)

// Core algorithms (the paper's contribution).
type (
	// Solution is an algorithm's answer for one request.
	Solution = core.Solution
	// Options configures ApproMulti.
	Options = core.Options
	// CostModel is the online exponential resource-pricing model.
	CostModel = core.CostModel
	// OnlineCP is the paper's online admission algorithm.
	OnlineCP = core.OnlineCP
	// OnlineSP is the online baseline heuristic.
	OnlineSP = core.OnlineSP
	// OnlineSPStatic is the congestion-oblivious SP variant.
	OnlineSPStatic = core.OnlineSPStatic
	// OnlineCPK is the K-server online extension.
	OnlineCPK = core.OnlineCPK
	// Planner is the pure planning half of an admission algorithm.
	Planner = core.Planner
	// Admitter binds a Planner to the shared commit machinery
	// (single-goroutine use; prefer Engine).
	Admitter = core.Admitter
	// CPPlanner is Online_CP's planning half.
	CPPlanner = core.CPPlanner
	// SPPlanner is the adaptive SP baseline's planning half.
	SPPlanner = core.SPPlanner
	// SPStaticPlanner is the static-routes SP baseline's planning half.
	SPStaticPlanner = core.SPStaticPlanner
	// CPKPlanner is the K-server online extension's planning half.
	CPKPlanner = core.CPKPlanner
	// ApproCapPlanner adapts Appro_Multi_Cap to sequential admission.
	ApproCapPlanner = core.ApproCapPlanner
)

// Algorithm entry points.
var (
	ApproMulti          = core.ApproMulti
	ApproMultiContext   = core.ApproMultiContext
	AlgOneServer        = core.AlgOneServer
	AlgOneServerNearest = core.AlgOneServerNearest
	NewOnlineCP         = core.NewOnlineCP
	NewOnlineCPK        = core.NewOnlineCPK
	NewOnlineSP         = core.NewOnlineSP
	NewOnlineSPStatic   = core.NewOnlineSPStatic
	DefaultOptions      = core.DefaultOptions
	DefaultCostModel    = core.DefaultCostModel
	Reoptimize          = core.Reoptimize
	OperationalCost     = core.OperationalCost
	AllocationFor       = core.AllocationFor
	IsRejection         = core.IsRejection
	// IsCanceled reports whether an Admit/Plan error stems from
	// context cancellation rather than an admission decision.
	IsCanceled = core.IsCanceled
)

// Functional options across the façade share one convention: every
// constructor is named With<Setting> (boolean selectors like
// Capacitated drop the prefix), zero options always means the
// evaluation defaults, and the option type names its target —
// a SolveOption configures one solver call, an EngineOption
// configures an Engine at construction. Each constructor carries a
// runnable doc example.
//
// SolveOption configures ApproMulti functionally; build the Options
// value with NewOptions. The bare Options struct remains supported,
// but new call sites should prefer
//
//	sol, err := nfvmcast.ApproMulti(nw, req,
//	    nfvmcast.NewOptions(nfvmcast.WithK(3), nfvmcast.Capacitated()))
type SolveOption func(*Options)

// NewOptions builds ApproMulti options from the evaluation defaults
// (K = 3) plus the given settings.
func NewOptions(opts ...SolveOption) Options {
	o := core.DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithK bounds the server subsets ApproMulti enumerates to size K.
func WithK(k int) SolveOption {
	return func(o *Options) { o.K = k }
}

// Capacitated selects the Appro_Multi_Cap variant: plan on the
// residual network, keeping only links and servers that can host the
// request.
func Capacitated() SolveOption {
	return func(o *Options) { o.Capacitated = true }
}

// WithMaxDeliveryHops adds an end-to-end delivery-depth bound.
func WithMaxDeliveryHops(h int) SolveOption {
	return func(o *Options) { o.MaxDeliveryHops = h }
}

// WithSolveWorkers bounds concurrent candidate evaluation inside one
// ApproMulti call (0/1 sequential, negative one per CPU); results are
// byte-identical at every setting.
func WithSolveWorkers(n int) SolveOption {
	return func(o *Options) { o.Workers = n }
}

// Admission planners (plan/commit split): each proposes solutions
// against a read-only network view and pairs with NewAdmitter or
// NewEngine for commitment.
var (
	NewAdmitter        = core.NewAdmitter
	NewCPPlanner       = core.NewCPPlanner
	NewSPPlanner       = core.NewSPPlanner
	NewSPStaticPlanner = core.NewSPStaticPlanner
	NewCPKPlanner      = core.NewCPKPlanner
	NewApproCapPlanner = core.NewApproCapPlanner
	NewDistCPPlanner   = core.NewDistCPPlanner
	NewReconfPlanner   = core.NewReconfPlanner
)

// Planner registry: the one table every policy-by-name surface
// resolves against — nfvmcast -algorithm, nfvsim's online drivers, the
// daemon manifest, and scenario configs. Planners() lists the
// registered specs in name order; NewPlanner constructs by name
// (ErrUnknownPlanner on a miss); RegisterPlanner adds out-of-tree
// policies at init time.
type (
	// PlannerSpec is one registry row: a stable policy name, a
	// one-line description, and the constructor.
	PlannerSpec = core.PlannerSpec
	// PlannerOptions parameterises NewPlanner: the substrate size (for
	// the exponential cost-model defaults) plus per-policy knobs
	// (K, SplitLimit, Hysteresis, ...) that each constructor reads as
	// it needs.
	PlannerOptions = core.PlannerOptions
	// DistCPPlanner splits a request's service chain across up to
	// SplitLimit servers (distributed chain placement) under the same
	// exponential cost model as Online_CP.
	DistCPPlanner = core.DistCPPlanner
	// ReconfPlanner wraps Online_CP and additionally migrates the
	// worst-drifted live sessions to cheaper trees during Engine.Update
	// when the projected saving clears its hysteresis factor.
	ReconfPlanner = core.ReconfPlanner
	// Reconfigurer is the capability interface the engine probes for:
	// planners implementing it run a migration pass after every
	// successful Update.
	Reconfigurer = core.Reconfigurer
)

var (
	RegisterPlanner = core.RegisterPlanner
	Planners        = core.Planners
	LookupPlanner   = core.LookupPlanner
	NewPlanner      = core.NewPlanner
)

// Registry-policy defaults (overridable through PlannerOptions).
const (
	// DefaultSplitLimit is Dist_CP's chain-split budget.
	DefaultSplitLimit = core.DefaultSplitLimit
	// DefaultReconfHysteresis is Reconf_CP's migration threshold β: a
	// session migrates only when its current price is at least β× the
	// freshly planned tree's cost.
	DefaultReconfHysteresis = core.DefaultReconfHysteresis
	// DefaultReconfMigrations bounds migrations per Update pass.
	DefaultReconfMigrations = core.DefaultReconfMigrations
)

// Admission engine (single-writer concurrency over a capacitated SDN).
type (
	// Engine serializes all network mutations through one writer
	// goroutine while planning fans out across callers. Its Admit and
	// Update carry context-aware variants (AdmitContext,
	// UpdateContext): cancellation aborts planning between candidate
	// evaluations, is never counted as a rejection, and never leaves a
	// request half-admitted.
	Engine = engine.Engine
	// EngineOption configures an Engine at construction. It follows
	// the façade-wide With<Setting> convention (see SolveOption):
	// WithWorkers, WithMetrics, WithRecovery, WithRepairCostFactor,
	// WithBatchWindow and WithJournal.
	EngineOption = engine.Option
)

// Engine construction options (the v1 API).
var (
	// WithWorkers bounds concurrent planning: 0 or 1 is sequential
	// mode (byte-identical to the direct admitters), n > 1 overlaps n
	// planners on residual snapshots, negative uses one per CPU.
	WithWorkers = engine.WithWorkers
	// WithMetrics attaches an AdmissionObs (counters, gauges, sampled
	// latencies, the admission-event stream).
	WithMetrics = engine.WithMetrics
	// WithRecovery enables self-healing failure recovery: after
	// failure injection through Update, affected live sessions are
	// repaired (local re-route first, full re-plan second) or shed
	// before Update returns.
	WithRecovery = engine.WithRecovery
	// WithRepairCostFactor sets the local-repair acceptance factor γ
	// (accept a re-route only at cost <= γ× the damaged tree's);
	// γ <= 0 forces every repair through the full re-plan path.
	WithRepairCostFactor = engine.WithRepairCostFactor
	// WithBatchWindow enables epoch-batched commits: up to n finished
	// plans commit under one mutation-version bump, amortising planner
	// cache invalidation. 0 or 1 commits every decision in its own
	// epoch; decisions are identical at every window.
	WithBatchWindow = engine.WithBatchWindow
)

// NewEngine returns an admission engine owning nw that admits with
// planner's policy; Close it when done. Without options the engine is
// sequential — byte-identical to the direct admitters — and unobserved:
//
//	eng := nfvmcast.NewEngine(nw, planner,
//	    nfvmcast.WithWorkers(8),
//	    nfvmcast.WithRecovery(nfvmcast.DefaultRecoveryPolicy()))
func NewEngine(nw *Network, planner Planner, opts ...EngineOption) *Engine {
	return engine.NewWith(nw, planner, opts...)
}

// Sharded multi-tenant admission (internal/shard): a router over N
// independent engines, one per tenant partition. Tenants map to shards
// by rendezvous hashing (or a ShardOptions.Assign pin for
// data-locality placement), sessions stay pinned to their admitting
// shard for release, and Report fans per-shard decision-transcript
// fingerprints into one deterministic merged digest.
type (
	// ShardRouter fans Admit/Release/Apply across shards by tenant key.
	ShardRouter = shard.Router
	// ShardOptions configures NewShardRouter (shard IDs, the per-shard
	// substrate Builder, engine knobs, the Assign placement hook).
	ShardOptions = shard.Options
	// ShardBuilder constructs one shard's network and planner.
	ShardBuilder = shard.Builder
	// ShardState is a shard's lifecycle position (active, draining,
	// stopped).
	ShardState = shard.State
	// ShardRouterReport is the deterministic fan-in over every shard.
	ShardRouterReport = shard.Report
	// ShardReport is one shard's view at Report time.
	ShardReport = shard.ShardReport
)

// Shard lifecycle states.
const (
	ShardActive   = shard.Active
	ShardDraining = shard.Draining
	ShardStopped  = shard.Stopped
)

// NewShardRouter builds a router with one engine per shard ID:
//
//	r, err := nfvmcast.NewShardRouter(nfvmcast.ShardOptions{
//	    Shards: []string{"eu", "us"},
//	    Build: func(id string) (*nfvmcast.Network, nfvmcast.Planner, error) { ... },
//	})
//	sol, err := r.Admit("tenant-a", req) // routed by rendezvous hash
func NewShardRouter(opts ShardOptions) (*ShardRouter, error) { return shard.New(opts) }

// Failure recovery (internal/recover): the self-healing subsystem
// behind WithRecovery.
type (
	// RecoveryPolicy tunes repair-vs-replan (γ), the re-plan retry
	// budget, and its exponential backoff.
	RecoveryPolicy = recov.Policy
	// RecoveryReport summarises one recovery pass (per-session
	// outcomes in ascending request-ID order).
	RecoveryReport = recov.Report
	// RecoveryOutcome records how one affected session was resolved.
	RecoveryOutcome = recov.Outcome
	// RecoveryMode names an outcome: local repair, full re-plan, shed.
	RecoveryMode = recov.Mode
)

// The recovery outcome modes.
const (
	RecoveryModeLocal  = recov.ModeLocal
	RecoveryModeReplan = recov.ModeReplan
	RecoveryModeShed   = recov.ModeShed
)

// DefaultRecoveryPolicy returns the recovery defaults (γ = 1.5, two
// re-plan retries, no backoff).
var DefaultRecoveryPolicy = recov.DefaultPolicy

// Observability (internal/obs): a lock-cheap metrics registry plus a
// structured admission-event stream, attachable to any Engine through
// EngineOptions.Obs and servable over HTTP in Prometheus text format.
type (
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// AdmissionObs binds one policy's admission lifecycle to a
	// registry (and, optionally, an event sink).
	AdmissionObs = obs.AdmissionObs
	// AdmissionObsOptions configures event emission and latency
	// sampling.
	AdmissionObsOptions = obs.AdmissionObsOptions
	// AdmissionEvent is one structured admission-lifecycle event.
	AdmissionEvent = obs.Event
	// EventSink receives admission events (JSONLinesSink, RingSink).
	EventSink = obs.Sink
	// NetworkGauges exports per-link/per-server residual-utilisation
	// and exponential-weight saturation gauges.
	NetworkGauges = obs.NetworkGauges
	// SaturationModel parameterises the weight-saturation gauges with
	// the exponential cost model's α, β, σ_v, σ_e.
	SaturationModel = obs.SaturationModel
)

// Observability constructors and servers.
var (
	NewMetricsRegistry = obs.NewRegistry
	NewAdmissionObs    = obs.NewAdmissionObs
	NewNetworkGauges   = obs.NewNetworkGauges
	NewJSONLinesSink   = obs.NewJSONLinesSink
	NewRingSink        = obs.NewRingSink
	// ServeMetrics starts an HTTP listener exposing the registry at
	// /metrics (Prometheus text), /metrics.json and /debug/pprof/.
	ServeMetrics = obs.ListenAndServe
	// MetricsHandler is the underlying http.Handler for embedding.
	MetricsHandler = obs.Handler
)

// Durability (internal/wal): an append-only write-ahead log of
// admission outcomes. The WAL logs decisions, not inputs — replay
// restores an engine's state bit-exactly without re-running any
// planner. Attach a log to an engine with WithJournal(log.Journal());
// every ack then implies the outcome is on disk ("acked ⇒ logged").
type (
	// WAL is an append-only outcome log over one directory
	// (CRC-framed records, rotated segments, snapshots).
	WAL = wal.Log
	// WALOptions configures OpenWAL (segment size, snapshot cadence,
	// fsync policy, observability).
	WALOptions = wal.Options
	// WALRecord is one logged outcome (admit, depart, repair, shed,
	// mutation batch).
	WALRecord = wal.Record
	// WALReplayStats summarises one Recover pass (snapshot LSN,
	// records replayed, torn-tail details).
	WALReplayStats = wal.ReplayStats
	// EngineJournal is the engine-side durability hook a WAL's
	// Journal() satisfies.
	EngineJournal = engine.Journal
)

// WAL defaults (see internal/wal).
const (
	DefaultWALSegmentBytes  = wal.DefaultSegmentBytes
	DefaultWALSnapshotEvery = wal.DefaultSnapshotEvery
)

// WAL entry points.
var (
	// OpenWAL opens (or creates) the log in dir and verifies the
	// existing chain up to a recoverable torn tail.
	OpenWAL = wal.Open
	// EngineFingerprint digests an engine's network residuals and live
	// sessions; two engines with equal fingerprints are in the same
	// admission state.
	EngineFingerprint = wal.Fingerprint
	// IsRecoverableTailError reports whether a Recover error is
	// confined to the newest segment's torn tail (crash mid-append)
	// rather than mid-chain corruption.
	IsRecoverableTailError = wal.IsRecoverableTail
	// WithJournal makes an engine durable: every state-changing
	// outcome is journalled (and barriered) before the caller's ack.
	WithJournal = engine.WithJournal
)

// Daemon (internal/daemon): nfvmcastd's embeddable core — a WAL-backed
// shard router behind an HTTP/JSON API (submit/release/apply/report),
// with bounded admission queueing, per-request deadlines, graceful
// drain and crash recovery on boot.
type (
	// Daemon serves admission over HTTP with per-shard WALs.
	Daemon = daemon.Server
	// DaemonConfig sizes the daemon (substrate, shards, WAL layout,
	// queue depth, request timeout).
	DaemonConfig = daemon.Config
	// DaemonBootStats reports one shard's crash-recovery outcome.
	DaemonBootStats = daemon.BootStats
)

// NewDaemon builds the daemon: recover every shard from its WAL (or
// start fresh), verify the on-disk manifest matches cfg's substrate,
// and return a server ready for Serve:
//
//	d, err := nfvmcast.NewDaemon(nfvmcast.DaemonConfig{
//	    Topology: "geant", Policy: "Online_CP", Shards: 2, WALDir: dir,
//	})
//	ln, _ := net.Listen("tcp", addr)
//	go d.Serve(ln)
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return daemon.New(cfg) }

// WriteTopologyDOT renders a topology as Graphviz DOT (servers drawn
// as filled boxes).
func WriteTopologyDOT(w io.Writer, topo *Topology, servers []NodeID) error {
	return viz.WriteTopologyDOT(w, topo, servers)
}

// WriteTreeDOT renders a pseudo-multicast tree as Graphviz DOT
// (unprocessed hops dashed, processed solid).
func WriteTreeDOT(w io.Writer, nw *Network, names []string, tree *PseudoTree) error {
	return viz.WriteTreeDOT(w, nw, names, tree)
}

// Sentinel errors re-exported for errors.Is matching.
var (
	ErrRejected         = core.ErrRejected
	ErrNoFeasibleServer = core.ErrNoFeasibleServer
	ErrUnreachable      = core.ErrUnreachable
	ErrDelayBound       = core.ErrDelayBound
	ErrUnknownRequest   = core.ErrUnknownRequest
	ErrUnknownPlanner   = core.ErrUnknownPlanner
	ErrEngineClosed     = engine.ErrClosed
	ErrNoPlan           = engine.ErrNoPlan
	ErrCommitConflict   = engine.ErrCommitConflict
	ErrDegraded         = recov.ErrDegraded
	ErrUndelivered      = multicast.ErrUndelivered
	ErrDisconnected     = graph.ErrDisconnected
	ErrTableFull        = sdn.ErrTableFull
	ErrLinkDown         = sdn.ErrLinkDown
	ErrServerDown       = sdn.ErrServerDown
	// Shard-router sentinels.
	ErrNoActiveShards   = shard.ErrNoActiveShards
	ErrUnknownShard     = shard.ErrUnknownShard
	ErrUnknownSession   = shard.ErrUnknownSession
	ErrShardStopped     = shard.ErrShardStopped
	ErrShardUnavailable = shard.ErrShardUnavailable
	ErrShardNotDrained  = shard.ErrNotDrained
	// Durability sentinels.
	ErrDurability   = engine.ErrDurability
	ErrLogCorrupt   = wal.ErrLogCorrupt
	ErrLogTruncated = wal.ErrLogTruncated
)
