package nfvmcast_test

import (
	"fmt"
	"math/rand"

	"nfvmcast"
)

// ExampleApproMulti solves one NFV-enabled multicast request on a
// hand-built five-switch network with a single server.
func ExampleApproMulti() {
	// Topology: 0—1—2—3—4 in a line, server at switch 2.
	g := nfvmcast.NewGraph(5)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, i+1, 1); err != nil {
			fmt.Println("build:", err)
			return
		}
	}
	topo := &nfvmcast.Topology{Name: "line5", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(7))
	nw, err := nfvmcast.NewNetworkWithServers(
		topo, nfvmcast.DefaultNetworkConfig(), []nfvmcast.NodeID{2}, rng)
	if err != nil {
		fmt.Println("network:", err)
		return
	}

	req := &nfvmcast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []nfvmcast.NodeID{4},
		BandwidthMbps: 100,
		Chain:         nfvmcast.MustChain(nfvmcast.Firewall),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.Options{K: 1})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("served by switch %d using %d directed hops\n",
		sol.Servers[0], sol.Tree.NumHops())
	// Output:
	// served by switch 2 using 4 directed hops
}

// ExampleChain shows service-chain construction and demand accounting.
func ExampleChain() {
	chain := nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.Firewall, nfvmcast.IDS)
	fmt.Println(chain)
	fmt.Printf("demand at 100 Mbps: %.0f MHz\n", chain.DemandMHz(100))
	fmt.Printf("demand at 200 Mbps: %.0f MHz\n", chain.DemandMHz(200))
	// Output:
	// <NAT, Firewall, IDS>
	// demand at 100 Mbps: 140 MHz
	// demand at 200 Mbps: 280 MHz
}

// ExampleSteinerKMB computes an approximate Steiner tree directly.
func ExampleSteinerKMB() {
	// A square with a diagonal shortcut.
	g := nfvmcast.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(0, 2, 1.5)
	tree, err := nfvmcast.SteinerKMB(g, []nfvmcast.NodeID{0, 1, 2})
	if err != nil {
		fmt.Println("steiner:", err)
		return
	}
	fmt.Printf("tree weight %.1f over %d edges\n", tree.Weight, len(tree.EdgeIDs))
	// Output:
	// tree weight 2.0 over 2 edges
}

// ExampleGEANT inspects the embedded real topology.
func ExampleGEANT() {
	topo := nfvmcast.GEANT()
	fmt.Printf("%s: %d PoPs, %d links, %d NFV server sites\n",
		topo.Name, topo.NumNodes(), topo.NumEdges(), topo.Servers)
	fmt.Println("node 17 is", topo.NodeNames[17])
	// Output:
	// GEANT: 40 PoPs, 66 links, 9 NFV server sites
	// node 17 is London
}
