package nfvmcast_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"nfvmcast"
)

// ExampleApproMulti solves one NFV-enabled multicast request on a
// hand-built five-switch network with a single server.
func ExampleApproMulti() {
	// Topology: 0—1—2—3—4 in a line, server at switch 2.
	g := nfvmcast.NewGraph(5)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, i+1, 1); err != nil {
			fmt.Println("build:", err)
			return
		}
	}
	topo := &nfvmcast.Topology{Name: "line5", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(7))
	nw, err := nfvmcast.NewNetworkWithServers(
		topo, nfvmcast.DefaultNetworkConfig(), []nfvmcast.NodeID{2}, rng)
	if err != nil {
		fmt.Println("network:", err)
		return
	}

	req := &nfvmcast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []nfvmcast.NodeID{4},
		BandwidthMbps: 100,
		Chain:         nfvmcast.MustChain(nfvmcast.Firewall),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.Options{K: 1})
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("served by switch %d using %d directed hops\n",
		sol.Servers[0], sol.Tree.NumHops())
	// Output:
	// served by switch 2 using 4 directed hops
}

// ExampleChain shows service-chain construction and demand accounting.
func ExampleChain() {
	chain := nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.Firewall, nfvmcast.IDS)
	fmt.Println(chain)
	fmt.Printf("demand at 100 Mbps: %.0f MHz\n", chain.DemandMHz(100))
	fmt.Printf("demand at 200 Mbps: %.0f MHz\n", chain.DemandMHz(200))
	// Output:
	// <NAT, Firewall, IDS>
	// demand at 100 Mbps: 140 MHz
	// demand at 200 Mbps: 280 MHz
}

// ExampleSteinerKMB computes an approximate Steiner tree directly.
func ExampleSteinerKMB() {
	// A square with a diagonal shortcut.
	g := nfvmcast.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(0, 2, 1.5)
	tree, err := nfvmcast.SteinerKMB(g, []nfvmcast.NodeID{0, 1, 2})
	if err != nil {
		fmt.Println("steiner:", err)
		return
	}
	fmt.Printf("tree weight %.1f over %d edges\n", tree.Weight, len(tree.EdgeIDs))
	// Output:
	// tree weight 2.0 over 2 edges
}

// ExampleGEANT inspects the embedded real topology.
func ExampleGEANT() {
	topo := nfvmcast.GEANT()
	fmt.Printf("%s: %d PoPs, %d links, %d NFV server sites\n",
		topo.Name, topo.NumNodes(), topo.NumEdges(), topo.Servers)
	fmt.Println("node 17 is", topo.NodeNames[17])
	// Output:
	// GEANT: 40 PoPs, 66 links, 9 NFV server sites
	// node 17 is London
}

// square returns a four-switch ring network with one NFV server at
// switch 2 — small enough that every example stays deterministic, but
// cyclic, so a failed link always has a detour.
func square() *nfvmcast.Network {
	g := nfvmcast.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	topo := &nfvmcast.Topology{Name: "square", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(7))
	nw, err := nfvmcast.NewNetworkWithServers(
		topo, nfvmcast.DefaultNetworkConfig(), []nfvmcast.NodeID{2}, rng)
	if err != nil {
		panic(err)
	}
	return nw
}

// ExampleNewEngine builds the v1 admission engine with functional
// options — metrics plus the self-healing recovery subsystem — admits
// a session, fails a link it uses, and reads the recovery report the
// engine produced inside Update.
func ExampleNewEngine() {
	nw := square()
	planner, err := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		fmt.Println("planner:", err)
		return
	}
	eng := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithWorkers(1),
		nfvmcast.WithRecovery(nfvmcast.DefaultRecoveryPolicy()),
	)
	defer eng.Close()

	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{1, 3},
		BandwidthMbps: 50, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	}
	sol, err := eng.Admit(req)
	if err != nil {
		fmt.Println("admit:", err)
		return
	}

	// Fail the first link the session's tree uses; recovery runs
	// before Update returns.
	var used []int
	for e := range nfvmcast.AllocationFor(req, sol.Tree).Links {
		used = append(used, int(e))
	}
	sort.Ints(used)
	if err := eng.Update(func(n *nfvmcast.Network) error {
		return n.SetLinkUp(nfvmcast.EdgeID(used[0]), false)
	}); err != nil {
		fmt.Println("update:", err)
		return
	}
	rep := eng.LastRecovery()
	for _, out := range rep.Outcomes {
		fmt.Printf("session %d: %s\n", out.RequestID, out.Mode)
	}
	fmt.Printf("live sessions: %d\n", eng.LiveCount())
	// Output:
	// session 1: local
	// live sessions: 1
}

func ExampleNewOptions() {
	opts := nfvmcast.NewOptions(
		nfvmcast.WithK(2),
		nfvmcast.Capacitated(),
		nfvmcast.WithMaxDeliveryHops(6),
	)
	fmt.Printf("K=%d capacitated=%v maxHops=%d\n", opts.K, opts.Capacitated, opts.MaxDeliveryHops)
	// Output:
	// K=2 capacitated=true maxHops=6
}

func ExampleNewController() {
	nw := square()
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{3},
		BandwidthMbps: 50, Chain: nfvmcast.MustChain(nfvmcast.NAT),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.NewOptions(nfvmcast.WithK(1)))
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	if err := nw.Allocate(nfvmcast.AllocationFor(req, sol.Tree)); err != nil {
		fmt.Println("allocate:", err)
		return
	}
	ctrl := nfvmcast.NewController(nw)
	if err := ctrl.Install(req, sol.Tree); err != nil {
		fmt.Println("install:", err)
		return
	}
	if err := ctrl.VerifyDelivery(req.ID); err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Printf("installed %d rules, delivery verified\n", ctrl.TotalRules())
	// Output:
	// installed 5 rules, delivery verified
}

func ExampleNewMetricsRegistry() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	reg := nfvmcast.NewMetricsRegistry()
	eng := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithMetrics(nfvmcast.NewAdmissionObs(reg, planner.Name(), nfvmcast.AdmissionObsOptions{})),
	)
	defer eng.Close()
	_, _ = eng.Admit(&nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{1},
		BandwidthMbps: 10, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	})
	fmt.Println("admitted:", reg.CounterValues()[`nfv_admitted_total{policy="Online_CP"}`])
	// Output:
	// admitted: 1
}

func ExampleNewGenerator() {
	gen, err := nfvmcast.NewGenerator(40, nfvmcast.OnlineGeneratorConfig(), 1)
	if err != nil {
		fmt.Println("generator:", err)
		return
	}
	for i := 0; i < 2; i++ {
		req, _ := gen.Next()
		fmt.Printf("request %d: %d destinations, chain %v\n", req.ID, len(req.Destinations), req.Chain)
	}
	// Output:
	// request 1: 4 destinations, chain <Proxy>
	// request 2: 5 destinations, chain <LoadBalancer, IDS>
}

func ExampleWriteTopologyDOT() {
	g := nfvmcast.NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	topo := &nfvmcast.Topology{Name: "tiny", Graph: g, Servers: 1, NodeNames: []string{"a", "b", "c"}}
	if err := nfvmcast.WriteTopologyDOT(os.Stdout, topo, []nfvmcast.NodeID{1}); err != nil {
		fmt.Println("dot:", err)
	}
	// Output:
	// graph "tiny" {
	//   layout=neato;
	//   overlap=false;
	//   node [shape=circle, fontsize=10];
	//   "a";
	//   "b" [shape=box, style=filled, fillcolor=lightblue];
	//   "c";
	//   "a" -- "b" [label="1"];
	//   "b" -- "c" [label="2"];
	// }
}

func ExampleWriteTreeDOT() {
	nw := square()
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{3},
		BandwidthMbps: 50, Chain: nfvmcast.MustChain(nfvmcast.NAT),
	}
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.NewOptions(nfvmcast.WithK(1)))
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	if err := nfvmcast.WriteTreeDOT(os.Stdout, nw, nil, sol.Tree); err != nil {
		fmt.Println("dot:", err)
	}
	// Output:
	// digraph pseudomulticast {
	//   rankdir=LR;
	//   node [shape=circle, fontsize=10];
	//   "v0" [shape=house, style=filled, fillcolor=palegreen];
	//   "v2" [shape=box, style=filled, fillcolor=lightblue];
	//   "v3" [shape=doublecircle];
	//   "v0" -> "v3" [style="dashed, color=gray40"];
	//   "v3" -> "v2" [style="dashed, color=gray40"];
	//   "v2" -> "v3" [style="solid, color=blue"];
	// }
}

// The functional-option constructors, one doc example each. The two
// families share one convention: constructors are named With<Setting>
// (boolean selectors like Capacitated drop the prefix), zero options
// always means the evaluation defaults, and the type names the target
// — a SolveOption configures one ApproMulti call, an EngineOption
// configures an Engine at construction.

func ExampleWithK() {
	opts := nfvmcast.NewOptions(nfvmcast.WithK(2))
	fmt.Println("K =", opts.K)
	// Output:
	// K = 2
}

func ExampleCapacitated() {
	opts := nfvmcast.NewOptions(nfvmcast.Capacitated())
	fmt.Println("capacitated =", opts.Capacitated)
	// Output:
	// capacitated = true
}

func ExampleWithMaxDeliveryHops() {
	opts := nfvmcast.NewOptions(nfvmcast.WithMaxDeliveryHops(6))
	fmt.Println("max delivery hops =", opts.MaxDeliveryHops)
	// Output:
	// max delivery hops = 6
}

// ExampleWithSolveWorkers pins the parallel-solve contract: the same
// call is byte-identical at every worker count.
func ExampleWithSolveWorkers() {
	nw := square()
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{3},
		BandwidthMbps: 50, Chain: nfvmcast.MustChain(nfvmcast.NAT),
	}
	seq, err := nfvmcast.ApproMulti(nw, req, nfvmcast.NewOptions(nfvmcast.WithSolveWorkers(1)))
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	par, err := nfvmcast.ApproMulti(nw, req, nfvmcast.NewOptions(nfvmcast.WithSolveWorkers(4)))
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("identical at any worker count:",
		seq.Servers[0] == par.Servers[0] && seq.Tree.NumHops() == par.Tree.NumHops())
	// Output:
	// identical at any worker count: true
}

func ExampleWithWorkers() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	eng := nfvmcast.NewEngine(nw, planner, nfvmcast.WithWorkers(4))
	defer eng.Close()
	_, err := eng.Admit(&nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{3},
		BandwidthMbps: 10, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	})
	fmt.Println("admitted:", err == nil, "live:", eng.LiveCount())
	// Output:
	// admitted: true live: 1
}

func ExampleWithMetrics() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	reg := nfvmcast.NewMetricsRegistry()
	ring := nfvmcast.NewRingSink(8)
	eng := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithMetrics(nfvmcast.NewAdmissionObs(reg, planner.Name(),
			nfvmcast.AdmissionObsOptions{Events: ring})),
	)
	defer eng.Close()
	_, _ = eng.Admit(&nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{1},
		BandwidthMbps: 10, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	})
	for _, ev := range ring.Events() {
		fmt.Println("event:", ev.Type)
	}
	fmt.Println("admitted:", reg.CounterValues()[`nfv_admitted_total{policy="Online_CP"}`])
	// Output:
	// event: admit_planned
	// event: admitted
	// admitted: 1
}

func ExampleWithRecovery() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	pol := nfvmcast.DefaultRecoveryPolicy()
	eng := nfvmcast.NewEngine(nw, planner, nfvmcast.WithRecovery(pol))
	defer eng.Close()
	fmt.Printf("self-healing engine: gamma=%.1f retries=%d\n", pol.Gamma, pol.RetryBudget)
	// Output:
	// self-healing engine: gamma=1.5 retries=2
}

// ExampleWithRepairCostFactor sets gamma to zero, disabling local
// repair: the session ExampleNewEngine recovers with a local re-route
// now goes through the full re-plan path instead.
func ExampleWithRepairCostFactor() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	eng := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithRecovery(nfvmcast.DefaultRecoveryPolicy()),
		nfvmcast.WithRepairCostFactor(0),
	)
	defer eng.Close()
	req := &nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{1, 3},
		BandwidthMbps: 50, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	}
	sol, err := eng.Admit(req)
	if err != nil {
		fmt.Println("admit:", err)
		return
	}
	var used []int
	for e := range nfvmcast.AllocationFor(req, sol.Tree).Links {
		used = append(used, int(e))
	}
	sort.Ints(used)
	if err := eng.Update(func(n *nfvmcast.Network) error {
		return n.SetLinkUp(nfvmcast.EdgeID(used[0]), false)
	}); err != nil {
		fmt.Println("update:", err)
		return
	}
	for _, out := range eng.LastRecovery().Outcomes {
		fmt.Printf("session %d: %s\n", out.RequestID, out.Mode)
	}
	// Output:
	// session 1: replan
}

func ExampleWithBatchWindow() {
	nw := square()
	planner, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	eng := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithWorkers(2),
		nfvmcast.WithBatchWindow(4),
	)
	defer eng.Close()
	for id := 1; id <= 3; id++ {
		_, _ = eng.Admit(&nfvmcast.Request{
			ID: id, Source: 0, Destinations: []nfvmcast.NodeID{3},
			BandwidthMbps: 5, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
		})
	}
	fmt.Println("live:", eng.LiveCount())
	// Output:
	// live: 3
}

// ExampleWithJournal runs an engine's two lives: a durable engine
// admits a session and "crashes"; a fresh engine over the same log
// replays the outcome — no planner re-runs — back to the identical
// admission state.
func ExampleWithJournal() {
	dir, err := os.MkdirTemp("", "nfvwal")
	if err != nil {
		fmt.Println("tmp:", err)
		return
	}
	defer os.RemoveAll(dir)

	first, err := nfvmcast.OpenWAL(dir, nfvmcast.WALOptions{})
	if err != nil {
		fmt.Println("wal:", err)
		return
	}
	p1, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(4))
	eng1 := nfvmcast.NewEngine(square(), p1, nfvmcast.WithJournal(first.Journal()))
	if _, err := eng1.Admit(&nfvmcast.Request{
		ID: 1, Source: 0, Destinations: []nfvmcast.NodeID{3},
		BandwidthMbps: 25, Chain: nfvmcast.MustChain(nfvmcast.Firewall),
	}); err != nil {
		fmt.Println("admit:", err)
		return
	}
	before, _ := nfvmcast.EngineFingerprint(eng1)
	eng1.Close()
	first.Close()

	second, err := nfvmcast.OpenWAL(dir, nfvmcast.WALOptions{})
	if err != nil {
		fmt.Println("reopen:", err)
		return
	}
	defer second.Close()
	p2, _ := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(4))
	eng2 := nfvmcast.NewEngine(square(), p2, nfvmcast.WithJournal(second.Journal()))
	defer eng2.Close()
	stats, err := second.Recover(eng2)
	if err != nil {
		fmt.Println("recover:", err)
		return
	}
	after, _ := nfvmcast.EngineFingerprint(eng2)
	fmt.Printf("replayed %d record(s), state restored: %v\n", stats.Records, before == after)
	// Output:
	// replayed 1 record(s), state restored: true
}

// ExamplePlanners walks the planner registry — the single table
// nfvmcast -algorithm, nfvsim experiment drivers, the daemon manifest
// and scenario configs all resolve policies from.
func ExamplePlanners() {
	for _, spec := range nfvmcast.Planners() {
		fmt.Println(spec.Name)
	}
	// Output:
	// Appro_Multi_Cap
	// Dist_CP
	// Online_CP
	// Online_CPK
	// Reconf_CP
	// SP
	// SP_Static
}

// ExampleNewPlanner resolves a planner by registry name and shows the
// typed miss: unknown names return ErrUnknownPlanner.
func ExampleNewPlanner() {
	nw := square()
	p, err := nfvmcast.NewPlanner("Dist_CP", nfvmcast.PlannerOptions{Nodes: nw.NumNodes()})
	if err != nil {
		fmt.Println("planner:", err)
		return
	}
	fmt.Println("resolved:", p.Name())
	_, err = nfvmcast.NewPlanner("Bogus_CP", nfvmcast.PlannerOptions{Nodes: nw.NumNodes()})
	fmt.Println("unknown name:", errors.Is(err, nfvmcast.ErrUnknownPlanner))
	// Output:
	// resolved: Dist_CP
	// unknown name: true
}
