package nfvmcast_test

// Full-lifecycle integration test across every module: topology →
// network → online admission → flow-table installation → packet
// verification → link failure → re-planning → re-optimisation →
// departures, with capacity and delivery invariants checked at each
// stage.

import (
	"math/rand"
	"testing"

	"nfvmcast"
)

func TestIntegrationFullLifecycle(t *testing.T) {
	const (
		n    = 70
		seed = 101
	)
	topo, err := nfvmcast.WaxmanDegree(n, nfvmcast.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := nfvmcast.NewOnlineCP(nw, nfvmcast.DefaultCostModel(n))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := nfvmcast.NewControllerWithRuleLimit(nw, 200)
	if err != nil {
		t.Fatal(err)
	}

	checkInvariants := func(stage string) {
		t.Helper()
		for e := 0; e < nw.NumEdges(); e++ {
			if r := nw.ResidualBandwidth(e); r < -1e-6 || r > nw.BandwidthCap(e)+1e-6 {
				t.Fatalf("%s: link %d residual %v out of bounds", stage, e, r)
			}
		}
		for _, v := range nw.Servers() {
			if r := nw.ResidualCompute(v); r < -1e-6 || r > nw.ComputeCap(v)+1e-6 {
				t.Fatalf("%s: server %d residual %v out of bounds", stage, v, r)
			}
		}
	}

	// Stage 1: admit a workload, install and verify every session.
	gen, err := nfvmcast.NewGenerator(n, nfvmcast.OnlineGeneratorConfig(), seed+2)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[int]*nfvmcast.Solution)
	for i := 0; i < 90; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if !nfvmcast.IsRejection(aerr) {
				t.Fatalf("admission %d: %v", i, aerr)
			}
			continue
		}
		if err := ctrl.Install(req, sol.Tree); err != nil {
			t.Fatalf("install %d: %v", req.ID, err)
		}
		if err := ctrl.VerifyDelivery(req.ID); err != nil {
			t.Fatalf("verify %d: %v", req.ID, err)
		}
		live[req.ID] = sol
	}
	if len(live) < 30 {
		t.Fatalf("only %d sessions admitted", len(live))
	}
	checkInvariants("after admission")

	// Stage 2: fail a used, non-bridge link; re-plan affected sessions.
	isBridge := make(map[nfvmcast.EdgeID]bool)
	for _, e := range nfvmcast.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	failed := nfvmcast.EdgeID(-1)
	var bestUtil float64
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); u > bestUtil && !isBridge[e] {
			failed, bestUtil = e, u
		}
	}
	if failed == -1 {
		t.Fatal("no non-bridge link carries load")
	}
	if err := nw.SetLinkUp(failed, false); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for id, sol := range live {
		if !nw.AffectedBy(nfvmcast.AllocationFor(sol.Request, sol.Tree)) {
			continue
		}
		if _, err := cp.Depart(id); err != nil {
			t.Fatalf("depart %d: %v", id, err)
		}
		if err := ctrl.Uninstall(id); err != nil {
			t.Fatalf("uninstall %d: %v", id, err)
		}
		delete(live, id)
		fresh := sol.Request.Clone()
		fresh.ID += 10000
		newSol, aerr := cp.Admit(fresh)
		if aerr != nil {
			continue // degraded network may reject
		}
		if _, uses := newSol.Tree.LinkLoads()[failed]; uses {
			t.Fatalf("re-planned session %d crosses the failed link", fresh.ID)
		}
		if err := ctrl.Install(fresh, newSol.Tree); err != nil {
			t.Fatalf("re-install %d: %v", fresh.ID, err)
		}
		if err := ctrl.VerifyDelivery(fresh.ID); err != nil {
			t.Fatalf("re-verify %d: %v", fresh.ID, err)
		}
		live[fresh.ID] = newSol
		recovered++
	}
	checkInvariants("after failover")
	if err := nw.SetLinkUp(failed, true); err != nil {
		t.Fatal(err)
	}
	_ = recovered

	// Stage 3: re-optimise the surviving sessions; install the
	// replacements and confirm total cost never rises.
	sessions := make([]*nfvmcast.Solution, 0, len(live))
	for _, sol := range live {
		sessions = append(sessions, sol)
	}
	reopt, improved, saved, err := nfvmcast.Reoptimize(nw, sessions, nfvmcast.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if saved < 0 {
		t.Fatalf("reoptimize saved %v < 0", saved)
	}
	for i := range sessions {
		if reopt[i] == sessions[i] {
			continue // unchanged
		}
		id := sessions[i].Request.ID
		// Tell the admitter the session is now realised by the new
		// tree, so its eventual departure releases the right bundle.
		if err := cp.Replace(id, reopt[i]); err != nil {
			t.Fatalf("replace %d: %v", id, err)
		}
		if err := ctrl.Uninstall(id); err != nil {
			t.Fatalf("uninstall for reoptimize %d: %v", id, err)
		}
		if err := ctrl.Install(reopt[i].Request, reopt[i].Tree); err != nil {
			t.Fatalf("reinstall %d: %v", id, err)
		}
		if err := ctrl.VerifyDelivery(id); err != nil {
			t.Fatalf("verify reoptimized %d: %v", id, err)
		}
		live[id] = reopt[i]
	}
	checkInvariants("after reoptimize")
	t.Logf("lifecycle: %d live sessions, %d recovered, %d reoptimized (%.1f saved)",
		len(live), recovered, improved, saved)

	// Stage 4: drain everything; the network must return to pristine
	// residuals.
	for id := range live {
		if _, err := cp.Depart(id); err != nil {
			t.Fatalf("final depart %d: %v", id, err)
		}
		if err := ctrl.Uninstall(id); err != nil {
			t.Fatalf("final uninstall %d: %v", id, err)
		}
	}
	if cp.LiveCount() != 0 {
		t.Fatalf("live count %d after drain", cp.LiveCount())
	}
	if ctrl.TotalRules() != 0 {
		t.Fatalf("%d rules remain after drain", ctrl.TotalRules())
	}
	const tol = 1e-4
	for e := 0; e < nw.NumEdges(); e++ {
		if d := nw.ResidualBandwidth(e) - nw.BandwidthCap(e); d < -tol || d > tol {
			t.Fatalf("link %d residual %v != capacity %v after drain",
				e, nw.ResidualBandwidth(e), nw.BandwidthCap(e))
		}
	}
	for _, v := range nw.Servers() {
		if d := nw.ResidualCompute(v) - nw.ComputeCap(v); d < -tol || d > tol {
			t.Fatalf("server %d residual %v != capacity %v after drain",
				v, nw.ResidualCompute(v), nw.ComputeCap(v))
		}
	}
}
